// Visibility-set benchmark: the fan-union hot path that every per-vote
// update in the simulation, the batch profiles, and the streaming engine
// goes through. Three measurements on the standard calibrated corpus:
//
//   - union:      replay every front-page story's vote column through a
//                 scratch HybridSet, one sorted CSR fan-span union per vote
//                 (the add_voter kernel). Reported per union_span call.
//   - membership: galloping contains() probes against the sets the replay
//                 produced, uniform over the user universe.
//   - replay:     full streaming-engine ingest (the end-to-end consumer of
//                 the sets), with the engine's resident state bytes.
//
// The union workload is additionally split by representation mode —
// union_array_ns_per_op times each story's sorted-array prefix (every
// union before the set promotes) and union_bitmap_ns_per_op the bitmap
// remainder — because the two modes hit entirely different kernels
// (src/simd set_diff vs bitmap_missing/bitmap_set) and a win in one must
// not be masked by samples from the other.
//
// With --json <path> the gauges below land in the BENCH_visibility.json
// perf-trajectory format; scripts/bench_check.py gates union_ns_per_op,
// union_array_ns_per_op, union_bitmap_ns_per_op, contains_ns_per_op
// (lower is better) and replay_votes_per_sec (higher).

#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "src/digg/hybrid_set.h"
#include "src/simd/dispatch.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace {

template <typename F>
double best_of_ns(int reps, F&& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    work();
    const double ns = std::chrono::duration<double, std::nano>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ns < best) best = ns;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Hybrid visibility sets: fan-union hot path");
  const data::Corpus& corpus = ctx.synthetic.corpus;
  const graph::Digraph& net = corpus.network;
  constexpr int kReps = 5;

  // --- union: one fan-span merge per vote, the add_voter kernel ---------
  std::size_t unions = 0;
  for (const platform::StoryView& story : corpus.front_page)
    unions += story.vote_count();
  platform::HybridSet set(net.node_count());
  const double union_total_ns = best_of_ns(kReps, [&] {
    for (const platform::StoryView& story : corpus.front_page) {
      set.reset(net.node_count());
      for (const platform::UserId voter : story.voters())
        if (voter < net.node_count()) set.union_span(net.fans(voter));
    }
  });
  const double union_ns = union_total_ns / static_cast<double>(unions);

  // --- per-mode unions: the array prefix vs the bitmap remainder --------
  // Each story's replay is two timed phases split at promotion: unions
  // issued while the set is still a sorted array, then the rest. The
  // phase an op lands in is decided by the mode at call entry (the union
  // that triggers promotion is array work), and op counts are identical
  // across reps, so best-of-reps per phase is sound.
  std::size_t array_unions = 0;
  std::size_t bitmap_unions = 0;
  double array_total_ns = 1e300;
  double bitmap_total_ns = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    double a_ns = 0.0;
    double b_ns = 0.0;
    std::size_t a_ops = 0;
    std::size_t b_ops = 0;
    for (const platform::StoryView& story : corpus.front_page) {
      set.reset(net.node_count());
      const auto voters = story.voters();
      std::size_t i = 0;
      auto t0 = std::chrono::steady_clock::now();
      while (i < voters.size() && !set.is_bitmap()) {
        if (voters[i] < net.node_count()) {
          set.union_span(net.fans(voters[i]));
          ++a_ops;
        }
        ++i;
      }
      auto t1 = std::chrono::steady_clock::now();
      for (; i < voters.size(); ++i) {
        if (voters[i] < net.node_count()) {
          set.union_span(net.fans(voters[i]));
          ++b_ops;
        }
      }
      const auto t2 = std::chrono::steady_clock::now();
      a_ns += std::chrono::duration<double, std::nano>(t1 - t0).count();
      b_ns += std::chrono::duration<double, std::nano>(t2 - t1).count();
    }
    if (a_ns < array_total_ns) array_total_ns = a_ns;
    if (b_ns < bitmap_total_ns) bitmap_total_ns = b_ns;
    array_unions = a_ops;
    bitmap_unions = b_ops;
  }
  const double union_array_ns =
      array_unions ? array_total_ns / static_cast<double>(array_unions) : 0.0;
  const double union_bitmap_ns =
      bitmap_unions ? bitmap_total_ns / static_cast<double>(bitmap_unions)
                    : 0.0;

  // --- membership: gallop probes, uniform over the universe -------------
  constexpr std::size_t kProbes = 1u << 20;
  std::vector<std::uint32_t> keys(kProbes);
  for (std::uint32_t& k : keys)
    k = static_cast<std::uint32_t>(ctx.rng.uniform_int(
        0, static_cast<std::int64_t>(net.node_count()) - 1));
  std::size_t hits = 0;
  const double contains_total_ns = best_of_ns(kReps, [&] {
    std::size_t h = 0;
    for (const std::uint32_t k : keys) h += set.contains(k) ? 1 : 0;
    hits = h;
  });
  const double contains_ns =
      contains_total_ns / static_cast<double>(kProbes);

  // --- replay: the streaming engine end to end --------------------------
  const stream::EventStream es = stream::build_event_stream(corpus);
  const double votes = static_cast<double>(es.total_events());
  std::size_t state_bytes = 0;
  const double replay_ns = best_of_ns(kReps, [&] {
    stream::StreamEngine e(es, net);
    e.run_all();
    state_bytes = e.state_bytes();
  });
  const double votes_per_sec = votes / (replay_ns / 1e9);

  std::printf("fan-span unions: %zu over %zu stories (simd=%s)\n", unions,
              corpus.front_page.size(),
              simd::level_name(simd::active_level()));
  std::printf("union (add_voter kernel):  %8.1f ns/op\n", union_ns);
  std::printf("union (array mode):        %8.1f ns/op  (%zu ops)\n",
              union_array_ns, array_unions);
  std::printf("union (bitmap mode):       %8.1f ns/op  (%zu ops)\n",
              union_bitmap_ns, bitmap_unions);
  std::printf("membership (%zu probes, %zu hits): %8.1f ns/op\n",
              static_cast<std::size_t>(kProbes), hits, contains_ns);
  std::printf("stream replay:             %8.2f ms  (%.0f votes/s)\n",
              replay_ns / 1e6, votes_per_sec);
  std::printf("engine state bytes:        %zu\n", state_bytes);

  auto& reg = obs::Registry::global();
  reg.gauge("visibility.union_ns_per_op").set(union_ns);
  reg.gauge("visibility.union_array_ns_per_op").set(union_array_ns);
  reg.gauge("visibility.union_bitmap_ns_per_op").set(union_bitmap_ns);
  reg.gauge("visibility.contains_ns_per_op").set(contains_ns);
  reg.gauge("visibility.replay_votes_per_sec").set(votes_per_sec);
  reg.gauge("visibility.state_bytes").set(static_cast<double>(state_bytes));
  return 0;
}
