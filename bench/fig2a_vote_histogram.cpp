// Figure 2(a): histogram of the final number of votes received by the
// front-page stories. Paper: ~20% of stories below ~500 votes, ~20% above
// 1500, tail reaching a few thousand.

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 2a: histogram of final votes per front-page story");

  const core::Fig2aResult r = core::fig2a_vote_histogram(ctx.synthetic.corpus);
  std::printf("%s\n", stats::render_bars(r.histogram.bins()).c_str());

  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({"stories below 500 votes", "~20%",
                 stats::fmt_pct(r.fraction_below_500)});
  table.add_row({"stories above 1500 votes", "~20%",
                 stats::fmt_pct(r.fraction_above_1500)});
  table.add_row({"median final votes", "~600-1000",
                 stats::fmt(r.votes_summary.median, 0)});
  table.add_row({"max final votes", "~4000",
                 stats::fmt(r.votes_summary.max, 0)});
  std::printf("%s", table.render().c_str());
  return 0;
}
