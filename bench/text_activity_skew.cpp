// Section 3's quoted platform statistics:
//   - "of the more than 15,000 front page stories submitted by the top 1000
//     Digg users ... the top 3% of the users were responsible for 35% of the
//     submissions";
//   - "we did not see any front-page stories with fewer than 43 votes, nor
//     did we see any stories in the upcoming queue with more than 42 votes"
//     (the latter holds at promotion time under the count-and-rate rule;
//     stranded fan-wave stories can exceed it later — see EXPERIMENTS.md).

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Section 3: activity skew and the promotion boundary");

  const core::ActivitySkewResult r =
      core::text_activity_skew(ctx.synthetic.corpus);

  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({"top 3% share of front-page submissions", "35%",
                 stats::fmt_pct(r.top3pct_submission_share)});
  table.add_row({"minimum front-page story votes", ">= 43",
                 stats::fmt(static_cast<std::int64_t>(r.min_front_page_votes))});
  table.add_row({"max upcoming-story votes within first day", "<= 42 at scrape",
                 stats::fmt(static_cast<std::int64_t>(
                     r.max_upcoming_votes_within_day))});
  table.add_row({"max upcoming-story votes (final)", "n/a",
                 stats::fmt(static_cast<std::int64_t>(r.max_upcoming_votes))});
  table.add_row({"front-page stories", "~200",
                 stats::fmt(static_cast<std::int64_t>(r.front_page_count))});
  table.add_row({"upcoming stories", "~900",
                 stats::fmt(static_cast<std::int64_t>(r.upcoming_count))});
  std::printf("%s", table.render().c_str());
  return 0;
}
