// Figure 3(a): histogram of story influence — the number of users who can
// see the story through the Friends interface — at submission, after 10 and
// after 20 votes. Paper: slightly more than half the stories are submitted
// by users with fewer than ten fans; after ten votes almost half the stories
// are visible to at least 200 users.

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"

namespace {

void print_histogram(const char* label, const std::vector<std::size_t>& data) {
  digg::stats::LinearHistogram hist(0.0, 1400.0, 14);
  for (std::size_t v : data) hist.add(static_cast<double>(v));
  std::printf("influence %s:\n%s\n", label,
              digg::stats::render_bars(hist.bins()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 3a: story influence via the Friends interface");

  const core::Fig3aResult r = core::fig3a_influence(ctx.synthetic.corpus);
  print_histogram("at submission", r.at_submission);
  print_histogram("after 10 votes", r.after_10);
  print_histogram("after 20 votes", r.after_20);

  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({"submitters with < 10 fans", "~half",
                 stats::fmt_pct(r.fraction_submitters_under_10_fans)});
  table.add_row({"stories visible to >= 200 users after 10 votes", "~half",
                 stats::fmt_pct(r.fraction_visible_to_200_after_10)});
  std::printf("%s", table.render().c_str());
  return 0;
}
