// Section 6 future work, experiment 1: epidemic thresholds on scale-free vs
// homogeneous networks. Pastor-Satorras & Vespignani: the SIS threshold
// λ_c = <k>/<k²> vanishes for power-law degree distributions, unlike
// Erdős–Rényi graphs. We sweep the endemic prevalence over the effective
// spreading rate on both a preferential-attachment fan network and a
// degree-matched ER graph.

#include <cstdio>
#include <cstdlib>

#include "src/dynamics/epidemic.h"
#include "src/graph/generators.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("== Ablation: SIS epidemic threshold, scale-free vs ER ==\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  stats::Rng rng(seed);
  graph::PreferentialAttachmentParams pa;
  pa.node_count = 4000;
  pa.mean_out_degree = 4.0;
  const graph::Digraph scale_free = graph::preferential_attachment(pa, rng);
  const double mean_degree =
      2.0 * static_cast<double>(scale_free.edge_count()) /
      static_cast<double>(scale_free.node_count());
  const graph::Digraph er = graph::erdos_renyi(
      4000, mean_degree / 2.0 / 3999.0, rng);

  std::printf("mean-field threshold <k>/<k^2>: scale-free %.4f, ER %.4f\n",
              dynamics::sis_threshold_estimate(scale_free),
              dynamics::sis_threshold_estimate(er));
  std::printf("(paper/§6 expectation: scale-free threshold far below ER)\n\n");

  const std::vector<double> lambdas = {0.01, 0.02, 0.05, 0.1, 0.2, 0.4};
  stats::Rng rng_sf = rng.fork();
  stats::Rng rng_er = rng.fork();
  const auto sf_sweep = dynamics::prevalence_sweep(
      scale_free, lambdas, /*recovery=*/0.5, /*trials=*/3, /*max_steps=*/200,
      rng_sf);
  const auto er_sweep = dynamics::prevalence_sweep(
      er, lambdas, 0.5, 3, 200, rng_er);

  stats::TextTable table(
      {"lambda", "prevalence (scale-free)", "prevalence (ER)"});
  for (std::size_t i = 0; i < lambdas.size(); ++i) {
    table.add_row({stats::fmt(lambdas[i], 2),
                   stats::fmt_pct(sf_sweep[i].second),
                   stats::fmt_pct(er_sweep[i].second)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: the scale-free network sustains the epidemic at\n"
      "small lambda where the ER graph does not (vanishing threshold).\n");
  return 0;
}
