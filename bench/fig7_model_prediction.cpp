// Prediction-quality comparison: the online Gamma-Poisson Bayes fit
// (src/stream/bayes.h) races the paper's C4.5 (v10, fans1) tree, per
// scenario. Both predictors commit at the same information boundary — the
// story's first 10 votes after the submitter's digg — so the race is
// apples-to-apples: a trained batch classifier versus a per-story
// mechanistic fit that needs no training corpus at all.
//
// Protocol, per scenario: train the C4.5 tree on the scenario's corpus at
// the given seed, then replay a *fresh* corpus of the same scenario at
// seed+1 through the stream engine with both hooks armed, and score each
// predictor's online verdicts against the true final-vote labels. The
// Bayes expected-final-vote estimates also feed a calibration table
// (predicted vs actual final votes by predicted-magnitude bin).
//
// Usage: fig7_model_prediction [seed] [--scenario <name>] [--json <path>]
//                              [--smoke]
//   --scenario   run one scenario instead of all registered ones
//   --smoke      downscaled corpora + coverage assertion over every
//                registered dynamics::Model id (the scripts/ci.sh
//                `scenarios` leg)

#include <cmath>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "bench/common.h"
#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/dynamics/model.h"
#include "src/stats/table.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace {

using namespace digg;

struct Score {
  std::size_t tp = 0, tn = 0, fp = 0, fn = 0;
  void add(bool predicted, bool actual) {
    if (predicted && actual) ++tp;
    else if (predicted && !actual) ++fp;
    else if (!predicted && actual) ++fn;
    else ++tn;
  }
  [[nodiscard]] std::size_t total() const { return tp + tn + fp + fn; }
  [[nodiscard]] double precision() const {
    return tp + fp == 0 ? 0.0 : double(tp) / double(tp + fp);
  }
  [[nodiscard]] double recall() const {
    return tp + fn == 0 ? 0.0 : double(tp) / double(tp + fn);
  }
  [[nodiscard]] double accuracy() const {
    return total() == 0 ? 0.0 : double(tp + tn) / double(total());
  }
};

struct ScenarioReport {
  std::string name;
  std::string model_id;
  std::size_t scored = 0;  // stories where both predictors committed
  Score c45;
  Score bayes;
};

data::SyntheticCorpus generate(const data::ScenarioSpec& spec,
                               std::uint64_t seed) {
  stats::Rng rng(seed);
  return data::generate_corpus(spec.params, rng);
}

ScenarioReport run_scenario(const std::string& name, std::uint64_t seed,
                            bool smoke, stats::TextTable& calibration) {
  data::ScenarioSpec spec = data::make_scenario(name, seed);
  if (smoke) data::downscale(spec, 4000, 120);
  // Downscaled corpora rarely clear the paper's 520-vote bar; scale the
  // label so both classes exist and the race still means something.
  const std::size_t threshold =
      smoke ? 60 : core::kInterestingnessThreshold;

  // Train the tree on this scenario's corpus at the base seed...
  const data::SyntheticCorpus train = generate(spec, spec.seed);
  const std::vector<core::StoryFeatures> train_rows = core::extract_features(
      train.corpus.front_page, train.corpus.network, threshold);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(train_rows);

  // ...and race both predictors online over a fresh corpus at seed+1.
  const data::SyntheticCorpus eval = generate(spec, spec.seed + 1);
  const stream::EventStream es = stream::build_event_stream(eval.corpus);
  stream::StreamParams params;
  params.interesting_threshold = threshold;
  params.predictor = &predictor;
  params.bayes.enabled = true;
  stream::StreamEngine engine(es, eval.corpus.network, params);
  engine.run_all();
  const stream::StreamResult result = engine.result();

  ScenarioReport rep;
  rep.name = spec.name;
  rep.model_id = spec.model_id();

  // Calibration bins over the Bayes expected-final estimate.
  const double edges[] = {0, 10, 25, 43, 90, 180, 1e300};
  constexpr std::size_t kBins = 6;
  double pred_sum[kBins] = {}, actual_sum[kBins] = {};
  std::size_t bin_n[kBins] = {};

  for (const stream::StoryOutcome& story : result.stories) {
    if (!story.predicted_interesting.has_value() ||
        !story.bayes_interesting.has_value())
      continue;  // never reached the shared 10-vote decision point
    ++rep.scored;
    rep.c45.add(*story.predicted_interesting, story.interesting);
    rep.bayes.add(*story.bayes_interesting, story.interesting);
    for (std::size_t b = 0; b < kBins; ++b) {
      if (story.bayes_expected_final >= edges[b] &&
          story.bayes_expected_final < edges[b + 1]) {
        pred_sum[b] += story.bayes_expected_final;
        actual_sum[b] += static_cast<double>(story.final_votes);
        ++bin_n[b];
        break;
      }
    }
  }

  for (std::size_t b = 0; b < kBins; ++b) {
    if (bin_n[b] == 0) continue;
    const double n = static_cast<double>(bin_n[b]);
    calibration.add_row(
        {rep.name,
         b + 1 < kBins ? stats::fmt(edges[b], 0) + "-" +
                             stats::fmt(edges[b + 1], 0)
                       : ">=" + stats::fmt(edges[b], 0),
         stats::fmt(static_cast<std::int64_t>(bin_n[b])),
         stats::fmt(pred_sum[b] / n, 1), stats::fmt(actual_sum[b] / n, 1)});
  }
  return rep;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;

  bool smoke = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0)
      smoke = true;
    else
      passthrough.push_back(argv[i]);
  }
  bench::CliOptions opts = bench::parse_cli(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::arm_report(opts,
                    "Prediction comparison: online Bayes fit vs C4.5");
  std::printf("== Prediction comparison: online Bayes fit vs C4.5 ==\n");

  // Default sweep: every registered scenario. An explicit --scenario
  // narrows to one (the default CliOptions scenario is "legacy", so detect
  // "no flag" by comparing argv presence instead of the value).
  bool explicit_scenario = false;
  for (int i = 1; i < argc; ++i)
    if (std::strcmp(argv[i], "--scenario") == 0) explicit_scenario = true;
  const std::vector<std::string> names =
      explicit_scenario ? std::vector<std::string>{opts.scenario}
                        : data::scenario_names();

  stats::TextTable table({"scenario", "model", "stories", "C4.5 prec",
                          "C4.5 rec", "C4.5 acc", "Bayes prec", "Bayes rec",
                          "Bayes acc"});
  stats::TextTable calibration(
      {"scenario", "predicted bin", "n", "mean predicted", "mean actual"});
  std::set<std::string> models_covered;

  for (const std::string& name : names) {
    const ScenarioReport rep =
        run_scenario(name, opts.seed, smoke, calibration);
    models_covered.insert(rep.model_id);
    table.add_row({rep.name, rep.model_id,
                   stats::fmt(static_cast<std::int64_t>(rep.scored)),
                   stats::fmt(rep.c45.precision(), 2),
                   stats::fmt(rep.c45.recall(), 2),
                   stats::fmt_pct(rep.c45.accuracy()),
                   stats::fmt(rep.bayes.precision(), 2),
                   stats::fmt(rep.bayes.recall(), 2),
                   stats::fmt_pct(rep.bayes.accuracy())});
  }

  std::printf("decision point: 10 votes after the submitter's digg; "
              "labels: final votes > %s\n\n",
              smoke ? "60 (smoke downscale)" : "520 (paper Sec. 5.1)");
  std::printf("%s\n", table.render().c_str());
  std::printf("Bayes calibration (expected vs actual final votes):\n%s",
              calibration.render().c_str());

  if (smoke && !explicit_scenario) {
    // The CI coverage assertion: every registered dynamics::Model must be
    // exercised by at least one scenario, or the matrix rotted.
    const std::vector<std::string> registered =
        dynamics::registered_model_ids();
    for (const std::string& id : registered) {
      if (models_covered.count(id) == 0) {
        std::fprintf(stderr,
                     "SMOKE FAIL: registered model '%s' not covered by any "
                     "scenario\n",
                     id.c_str());
        return 1;
      }
    }
    std::printf("\nSMOKE OK: %zu scenarios covering %zu registered models\n",
                names.size(), registered.size());
  }
  return 0;
}
