// Figure 3(b): histogram of cascade size — the number of in-network votes
// (votes by fans of prior voters) — after 10, 20 and 30 votes. Paper quotes:
// for 30% of stories at least half of the first ten votes were in-network;
// after 20 votes 28% had >= 10 in-network; after 30 votes 36% had >= 10.

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Figure 3b: cascade sizes (in-network votes)");

  const core::Fig3bResult r = core::fig3b_cascades(ctx.synthetic.corpus);
  std::printf("cascade size after 10 votes:\n%s\n",
              stats::render_bars(r.cascade_after_10.items()).c_str());
  std::printf("cascade size after 20 votes:\n%s\n",
              stats::render_bars(r.cascade_after_20.items()).c_str());
  std::printf("cascade size after 30 votes:\n%s\n",
              stats::render_bars(r.cascade_after_30.items()).c_str());

  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({">= 5 in-network of first 10 votes", "30%",
                 stats::fmt_pct(r.frac_half_of_first10)});
  table.add_row({">= 10 in-network after 20 votes", "28%",
                 stats::fmt_pct(r.frac_10plus_after20)});
  table.add_row({">= 10 in-network after 30 votes", "36%",
                 stats::fmt_pct(r.frac_10plus_after30)});
  std::printf("%s", table.render().c_str());
  return 0;
}
