// Beyond the paper's single operating point: threshold sweep of the §5.2
// predictor (ROC / precision-recall / AUC over C4.5 leaf probabilities) and
// a bootstrap confidence interval on the precision gap between the social-
// signal predictor and the platform's own promotion decision. The paper's
// 0.57-vs-0.36 comparison rests on 48 stories; the interval shows how much
// of the reproduced gap survives resampling.

#include <unordered_set>

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/ml/roc.h"
#include "src/stats/bootstrap.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Section 5.2 extension: ROC sweep and precision-gap CI");

  const data::Corpus& corpus = ctx.synthetic.corpus;
  // Leak-free scores for EVERY top-user queue story via k-fold: each fold
  // is scored by a predictor trained on the front page minus that fold
  // (mirroring fig5's train/holdout separation, but covering the whole
  // candidate population instead of one 48-story sample).
  const auto candidates = core::top_user_testset(corpus);
  const auto holdout_features =
      core::extract_features(candidates, corpus.network);

  constexpr std::size_t kFolds = 6;
  std::vector<ml::Scored> scored(candidates.size());
  std::vector<double> ours_outcome(candidates.size(),
                                   std::numeric_limits<double>::quiet_NaN());
  std::vector<double> digg_outcome(candidates.size(),
                                   std::numeric_limits<double>::quiet_NaN());
  for (std::size_t fold = 0; fold < kFolds; ++fold) {
    std::unordered_set<platform::StoryId> fold_ids;
    for (std::size_t i = fold; i < candidates.size(); i += kFolds)
      fold_ids.insert(candidates[i].id);
    std::vector<data::Story> train_stories;
    for (const auto& s : corpus.front_page)
      if (!fold_ids.count(s.id)) train_stories.push_back(s);
    const auto train_features =
        core::extract_features(train_stories, corpus.network);
    const auto predictor =
        core::InterestingnessPredictor::train(train_features);
    for (std::size_t i = fold; i < candidates.size(); i += kFolds) {
      const core::StoryFeatures& f = holdout_features[i];
      scored[i] = ml::Scored{predictor.predict_proba(f), f.interesting};
      if (predictor.predict(f))
        ours_outcome[i] = f.interesting ? 1.0 : 0.0;
      if (candidates[i].promoted())
        digg_outcome[i] = f.interesting ? 1.0 : 0.0;
    }
  }
  std::printf(
      "holdout candidates: %zu (all top-user queue stories, %zu-fold "
      "leak-free scoring)\n\n",
      candidates.size(), kFolds);

  std::printf("ROC AUC: %.3f   PR AUC: %.3f   precision@recall>=0.8: %.3f\n\n",
              ml::roc_auc(scored), ml::pr_auc(scored),
              ml::precision_at_recall(scored, 0.8));

  stats::TextTable curve({"threshold", "recall (TPR)", "FPR", "precision"});
  const auto points = ml::roc_curve(scored);
  const std::size_t stride = std::max<std::size_t>(1, points.size() / 12);
  for (std::size_t i = 0; i < points.size(); i += stride) {
    curve.add_row({stats::fmt(points[i].threshold, 3),
                   stats::fmt(points[i].tpr, 2), stats::fmt(points[i].fpr, 2),
                   stats::fmt(points[i].precision, 2)});
  }
  std::printf("%s\n", curve.render().c_str());

  // Bootstrap CI of (our precision - Digg's precision) over the candidates.
  stats::PairedSample sample;
  sample.a = ours_outcome;
  sample.b = digg_outcome;
  stats::Rng boot_rng = ctx.rng.fork();
  const stats::Interval gap = stats::bootstrap_paired_diff_ci(
      sample, [](const std::vector<double>& v) { return stats::mean(v); },
      2000, 0.95, boot_rng);
  std::printf(
      "precision gap (ours - digg): %.3f, 95%% bootstrap CI [%.3f, %.3f]\n"
      "(paper point estimate: 0.57 - 0.36 = 0.21 on 48 stories)\n",
      gap.point, gap.lo, gap.hi);
  return 0;
}
