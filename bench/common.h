#pragma once
// Shared scaffolding for the figure-reproduction benches and the seed-taking
// examples: one CLI grammar, one scenario resolver, one corpus generator —
// so every binary reproduces a run from the same three words (scenario,
// seed, json path).
//
// Usage: <bench> [seed] [--scenario <name>] [--json <path>]
//   seed              decimal uint64; anything else is rejected with a
//                     usage message (a silently mis-parsed seed would
//                     "reproduce" a different run).
//   --scenario <name> named generation scenario (src/data/scenario.h);
//                     default "legacy", the calibrated corpus every golden
//                     figure is pinned to.
//   --json <path>     at exit, dump the obs metrics snapshot plus
//                     wall-clock timing to <path> (the BENCH_<name>.json
//                     perf-trajectory format; see scripts/bench_snapshot.sh).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>

#include "src/data/scenario.h"
#include "src/data/synthetic.h"
#include "src/obs/metrics.h"

namespace digg::bench {

struct CliOptions {
  std::uint64_t seed = 42;
  std::string scenario = "legacy";
  std::string json_path;
  bool smoke = false;  // downscale the scenario corpus (CI smokes)
};

struct Context {
  data::ScenarioSpec scenario;      // the resolved spec (name, params, seed)
  data::SyntheticCorpus synthetic;  // the generated corpus
  stats::Rng rng;  // stream for experiment-level randomness (CV folds etc.)
};

/// Strict decimal uint64 parse: rejects empty strings, signs, trailing
/// garbage, and overflow (strtoull alone accepts all four silently, which
/// would "reproduce" a different run). Shared with the seed-taking examples.
inline bool parse_seed_strict(const char* arg, std::uint64_t& out) {
  if (arg == nullptr || *arg == '\0') return false;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (errno == ERANGE || end == arg || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

namespace detail {

// State for the atexit JSON report (inline: one definition per binary).
struct Report {
  std::string json_path;
  std::string title;
  std::uint64_t seed = 0;
  std::chrono::steady_clock::time_point start;
};

inline Report& report() {
  static Report r;
  return r;
}

inline void write_report_at_exit() {
  const Report& r = report();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - r.start)
          .count();
  obs::write_bench_report(r.json_path, r.title, r.seed, wall_ms);
}

[[noreturn]] inline void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [seed] [--scenario <name>] [--json <path>] "
               "[--smoke]\n",
               argv0);
  std::fprintf(stderr,
               "  --smoke downsizes the corpus (20k users / 200 stories) "
               "for CI smokes\n");
  std::fprintf(stderr, "  seed must be a decimal unsigned 64-bit integer\n");
  std::fprintf(stderr, "  scenarios:");
  for (const std::string& n : data::scenario_names())
    std::fprintf(stderr, " %s", n.c_str());
  std::fprintf(stderr, "\n");
  std::exit(2);
}

}  // namespace detail

/// The shared CLI grammar. Unknown flags and malformed seeds exit with the
/// usage message; an unknown scenario name is caught later by
/// make_scenario (its error lists the known names).
inline CliOptions parse_cli(int argc, char** argv) {
  CliOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) detail::usage(argv[0]);
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--scenario") == 0) {
      if (i + 1 >= argc) detail::usage(argv[0]);
      opts.scenario = argv[++i];
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      opts.smoke = true;
    } else if (!parse_seed_strict(argv[i], opts.seed)) {
      std::fprintf(stderr, "%s: bad argument '%s'\n", argv[0], argv[i]);
      detail::usage(argv[0]);
    }
  }
  return opts;
}

/// Installs the atexit JSON report if `json_path` is set. Split out of
/// make_context for binaries that drive generation themselves (the perf
/// benches) but still emit BENCH_*.json.
inline void arm_report(const CliOptions& opts, const char* title) {
  if (opts.json_path.empty()) return;
  detail::Report& r = detail::report();
  r.json_path = opts.json_path;
  r.title = title;
  r.seed = opts.seed;
  r.start = std::chrono::steady_clock::now();
  std::atexit(detail::write_report_at_exit);
}

/// Resolves the scenario and generates its corpus, echoing the run line.
/// Exits with the scenario's error message (listing known names) when the
/// scenario is unknown.
inline Context make_context(const CliOptions& opts, const char* title) {
  arm_report(opts, title);
  std::printf("== %s ==\n", title);
  data::ScenarioSpec spec;
  try {
    spec = data::make_scenario(opts.scenario, opts.seed);
  } catch (const std::invalid_argument& err) {
    std::fprintf(stderr, "error: %s\n", err.what());
    std::exit(2);
  }
  // CI smokes (scripts/ci.sh) shrink every scenario the same way; figure
  // shapes survive the downscale, wall time drops to seconds.
  if (opts.smoke) data::downscale(spec, 20000, 200);
  stats::Rng rng(spec.seed);
  data::SyntheticCorpus synthetic = data::generate_corpus(spec.params, rng);
  std::printf(
      "corpus: scenario=%s model=%s seed=%llu users=%zu stories=%zu "
      "front_page=%zu upcoming=%zu\n\n",
      spec.name.c_str(), spec.model_id().c_str(),
      static_cast<unsigned long long>(spec.seed),
      synthetic.corpus.user_count(), synthetic.corpus.story_count(),
      synthetic.corpus.front_page.size(), synthetic.corpus.upcoming.size());
  return Context{std::move(spec), std::move(synthetic), rng.fork()};
}

inline Context make_context(int argc, char** argv, const char* title) {
  return make_context(parse_cli(argc, argv), title);
}

}  // namespace digg::bench
