#pragma once
// Shared scaffolding for the figure-reproduction benches: every binary
// generates the standard calibrated corpus (optionally re-seeded from
// argv[1]) and prints the seed and sample sizes so runs are reproducible.

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/data/synthetic.h"

namespace digg::bench {

struct Context {
  data::SyntheticCorpus synthetic;
  stats::Rng rng;  // stream for experiment-level randomness (CV folds etc.)
};

inline Context make_context(int argc, char** argv, const char* title) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("== %s ==\n", title);
  stats::Rng rng(seed);
  data::SyntheticParams params;
  data::SyntheticCorpus synthetic = data::generate_corpus(params, rng);
  std::printf(
      "corpus: seed=%llu users=%zu stories=%zu front_page=%zu upcoming=%zu\n\n",
      static_cast<unsigned long long>(seed), synthetic.corpus.user_count(),
      synthetic.corpus.story_count(), synthetic.corpus.front_page.size(),
      synthetic.corpus.upcoming.size());
  return Context{std::move(synthetic), rng.fork()};
}

}  // namespace digg::bench
