#pragma once
// Shared scaffolding for the figure-reproduction benches: every binary
// generates the standard calibrated corpus (optionally re-seeded from a
// positional argument) and prints the seed and sample sizes so runs are
// reproducible.
//
// Usage: <bench> [seed] [--json <path>]
//   seed          decimal uint64; anything else is rejected with a usage
//                 message (a silently mis-parsed seed would "reproduce" a
//                 different run).
//   --json <path> at exit, dump the obs metrics snapshot plus wall-clock
//                 timing to <path> (the BENCH_<name>.json perf-trajectory
//                 format; see scripts/bench_snapshot.sh).

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/data/synthetic.h"
#include "src/obs/metrics.h"

namespace digg::bench {

struct Context {
  data::SyntheticCorpus synthetic;
  stats::Rng rng;  // stream for experiment-level randomness (CV folds etc.)
};

/// Strict decimal uint64 parse: rejects empty strings, signs, trailing
/// garbage, and overflow (strtoull alone accepts all four silently, which
/// would "reproduce" a different run). Shared with the seed-taking examples.
inline bool parse_seed_strict(const char* arg, std::uint64_t& out) {
  if (arg == nullptr || *arg == '\0') return false;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 10);
  if (errno == ERANGE || end == arg || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

namespace detail {

// State for the atexit JSON report (inline: one definition per binary).
struct Report {
  std::string json_path;
  std::string title;
  std::uint64_t seed = 0;
  std::chrono::steady_clock::time_point start;
};

inline Report& report() {
  static Report r;
  return r;
}

inline void write_report_at_exit() {
  const Report& r = report();
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - r.start)
          .count();
  obs::write_bench_report(r.json_path, r.title, r.seed, wall_ms);
}

[[noreturn]] inline void usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [seed] [--json <path>]\n", argv0);
  std::fprintf(stderr, "  seed must be a decimal unsigned 64-bit integer\n");
  std::exit(2);
}

}  // namespace detail

inline Context make_context(int argc, char** argv, const char* title) {
  std::uint64_t seed = 42;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      if (i + 1 >= argc) detail::usage(argv[0]);
      json_path = argv[++i];
    } else if (!parse_seed_strict(argv[i], seed)) {
      std::fprintf(stderr, "%s: bad seed '%s'\n", argv[0], argv[i]);
      detail::usage(argv[0]);
    }
  }
  if (!json_path.empty()) {
    detail::Report& r = detail::report();
    r.json_path = std::move(json_path);
    r.title = title;
    r.seed = seed;
    r.start = std::chrono::steady_clock::now();
    std::atexit(detail::write_report_at_exit);
  }
  std::printf("== %s ==\n", title);
  stats::Rng rng(seed);
  data::SyntheticParams params;
  data::SyntheticCorpus synthetic = data::generate_corpus(params, rng);
  std::printf(
      "corpus: seed=%llu users=%zu stories=%zu front_page=%zu upcoming=%zu\n\n",
      static_cast<unsigned long long>(seed), synthetic.corpus.user_count(),
      synthetic.corpus.story_count(), synthetic.corpus.front_page.size(),
      synthetic.corpus.upcoming.size());
  return Context{std::move(synthetic), rng.fork()};
}

}  // namespace digg::bench
