// The paper's final (unnumbered) figure: scatter of friends+1 vs fans+1 for
// all users in the dataset, with top users highlighted — top users have more
// of both. Rendered here as log-binned medians plus summary statistics.

#include <cmath>

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Final figure: friends+1 vs fans+1, all users vs top users");

  const auto scatter = core::friends_fans_scatter(ctx.synthetic.corpus, 100);

  // Log-binned profile: median fans+1 per friends+1 octave.
  stats::TextTable profile(
      {"friends+1 bin", "users", "median fans+1 (all)", "top users in bin"});
  for (std::size_t lo = 1; lo <= 2048; lo *= 2) {
    const std::size_t hi = lo * 2;
    std::vector<double> fans;
    std::size_t top_count = 0;
    for (const auto& p : scatter) {
      if (p.friends_plus_1 >= lo && p.friends_plus_1 < hi) {
        fans.push_back(static_cast<double>(p.fans_plus_1));
        if (p.top_user) ++top_count;
      }
    }
    if (fans.empty()) continue;
    const stats::Summary s = stats::summarize(fans);
    // Built by append: the `"[" + fmt(..) + ","` rvalue chain trips GCC 12's
    // -Wrestrict false positive (PR105651) at -O2, which CI's -Werror promotes.
    std::string bucket = "[";
    bucket += stats::fmt(static_cast<std::int64_t>(lo));
    bucket += ",";
    bucket += stats::fmt(static_cast<std::int64_t>(hi));
    bucket += ")";
    profile.add_row({std::move(bucket),
                     stats::fmt(static_cast<std::int64_t>(s.n)),
                     stats::fmt(s.median, 1),
                     stats::fmt(static_cast<std::int64_t>(top_count))});
  }
  std::printf("%s\n", profile.render().c_str());

  double top_friends = 0.0, top_fans = 0.0, top_n = 0.0;
  double all_friends = 0.0, all_fans = 0.0, all_n = 0.0;
  std::vector<double> log_friends, log_fans;
  for (const auto& p : scatter) {
    all_friends += static_cast<double>(p.friends_plus_1);
    all_fans += static_cast<double>(p.fans_plus_1);
    ++all_n;
    log_friends.push_back(std::log(static_cast<double>(p.friends_plus_1)));
    log_fans.push_back(std::log(static_cast<double>(p.fans_plus_1)));
    if (p.top_user) {
      top_friends += static_cast<double>(p.friends_plus_1);
      top_fans += static_cast<double>(p.fans_plus_1);
      ++top_n;
    }
  }
  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({"users in scatter", "~16,600+",
                 stats::fmt(static_cast<std::int64_t>(all_n))});
  table.add_row({"mean fans+1, top users vs all", "top users far higher",
                 stats::fmt(top_fans / top_n, 1) + " vs " +
                     stats::fmt(all_fans / all_n, 1)});
  table.add_row({"mean friends+1, top users vs all", "top users far higher",
                 stats::fmt(top_friends / top_n, 1) + " vs " +
                     stats::fmt(all_friends / all_n, 1)});
  table.add_row({"log-log friends/fans correlation", "strongly positive",
                 stats::fmt(stats::pearson(log_friends, log_fans), 2)});
  std::printf("%s", table.render().c_str());
  return 0;
}
