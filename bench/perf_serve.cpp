// Serve-path benchmark: sustained multi-client vote ingest against a live
// Server, then a query-latency pass — the numbers the serve ingest gate
// rides on. The server and its clients run in one process (so the shared
// obs registry carries the server-side histograms into the JSON report),
// but all traffic crosses real loopback TCP through the real epoll
// front-end, frame decoder, MPSC rings, and shard-parallel apply.
//
// Gated gauges (scripts/bench_check.py):
//   serve.ingest_votes_per_sec  sustained throughput, sync-to-sync
//                               (higher is better)
//   serve.query_us_p99          tail latency of the online cascade-state /
//                               prediction queries (derived from the
//                               serve.query_us histogram)
//
// Usage: perf_serve [seed] [--scenario <name>] [--json <path>] [--votes <n>]

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/serve/client.h"
#include "src/serve/server.h"

int main(int argc, char** argv) {
  using namespace digg;

  long total_votes = 2'000'000;
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (std::strcmp(args[i], "--votes") == 0) {
      total_votes = std::strtol(args[i + 1], nullptr, 10);
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  const bench::Context ctx =
      bench::make_context(static_cast<int>(args.size()), args.data(),
                          "Serve: sustained multi-client ingest");
  const graph::Digraph& network = ctx.synthetic.corpus.network;
  const auto users = static_cast<std::uint32_t>(network.node_count());

  constexpr std::uint32_t kConnections = 4;
  constexpr std::uint32_t kStories = 64;  // one per engine shard
  constexpr std::uint32_t kQueries = 2000;
  const auto votes_per_story =
      static_cast<std::uint64_t>(total_votes) / kStories;

  serve::ServeParams params;  // throughput mode, no checkpointing
  serve::Server server(network, params);
  const std::uint16_t port = server.start();

  auto fail = [&](const std::string& what) -> int {
    std::fprintf(stderr, "perf_serve: %s\n", what.c_str());
    server.request_stop();
    server.wait();
    return 1;
  };
  // Spreads voter ids over the graph without an RNG in the hot loop. The
  // first 64 votes of a story get voters distinct within that story (the
  // engine rejects duplicate voters below its checkpoint horizon); past
  // the horizon votes are bare counter bumps and any voter id works.
  auto voter_at = [users](std::uint32_t story, std::uint64_t k) {
    if (k < 64) return static_cast<std::uint32_t>((story * 64 + k) % users);
    return static_cast<std::uint32_t>((k * 2654435761ull) % users);
  };

  // --- Submit phase: one story per shard, then a barrier. ----------------
  std::string error;
  const int ctrl = serve::connect_loopback(port);
  if (ctrl < 0) return fail("connect failed");
  serve::FrameDecoder ctrl_decoder;
  {
    std::vector<char> frames;
    for (std::uint32_t s = 0; s < kStories; ++s)
      serve::encode(serve::SubmitMsg{s + 1, voter_at(s, 0), 0.0}, frames);
    if (!serve::write_all(ctrl, frames.data(), frames.size()) ||
        !serve::sync_barrier(ctrl, ctrl_decoder, 0, error))
      return fail("submit phase: " + error);
  }

  // --- Ingest phase: pre-encoded vote streams, one story set per
  // connection, measured sync-to-sync (so the clock covers apply
  // completion, not just socket writes). -----------------------------------
  std::vector<std::vector<char>> send_buf(kConnections);
  for (std::uint32_t s = 0; s < kStories; ++s) {
    auto& buf = send_buf[s % kConnections];
    for (std::uint64_t k = 0; k < votes_per_story; ++k)
      serve::encode(serve::VoteMsg{s + 1, voter_at(s, k + 1),
                                   0.001 * static_cast<double>(k + 1)},
                    buf);
  }
  const std::uint64_t votes_sent = votes_per_story * kStories;

  std::vector<std::string> conn_error(kConnections);
  std::vector<std::thread> threads;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint32_t c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      const int fd = serve::connect_loopback(port);
      if (fd < 0) {
        conn_error[c] = "connect failed";
        return;
      }
      serve::FrameDecoder decoder;
      const auto& buf = send_buf[c];
      if (!serve::write_all(fd, buf.data(), buf.size()))
        conn_error[c] = "vote write failed";
      else
        serve::sync_barrier(fd, decoder, c + 1, conn_error[c]);
      ::close(fd);
    });
  }
  for (auto& t : threads) t.join();
  const double ingest_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (const auto& e : conn_error)
    if (!e.empty()) return fail("ingest phase: " + e);

  const double votes_per_sec = static_cast<double>(votes_sent) / ingest_s;
  obs::Registry::global()
      .gauge("serve.ingest_votes_per_sec")
      .set(votes_per_sec);
  std::printf("ingest: %llu votes over %u connections in %.3fs  (%.2fM/s)\n",
              static_cast<unsigned long long>(votes_sent), kConnections,
              ingest_s, votes_per_sec / 1e6);

  // --- Query phase: state + prediction round-robin over the stories; the
  // server-side serve.query_us histogram yields the gated _p99. -----------
  {
    std::vector<char> frames;
    for (std::uint32_t q = 0; q < kQueries; ++q) {
      const std::uint32_t id = (q % kStories) + 1;
      if (q % 2 == 0)
        serve::encode(serve::QueryStateMsg{id}, frames);
      else
        serve::encode(serve::QueryPredictMsg{id}, frames);
    }
    const auto q0 = std::chrono::steady_clock::now();
    if (!serve::write_all(ctrl, frames.data(), frames.size()))
      return fail("query write failed");
    std::vector<serve::Message> replies;
    if (!serve::read_messages(ctrl, ctrl_decoder, replies, kQueries, error))
      return fail("query phase: " + error);
    const double query_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - q0)
            .count();
    std::printf("queries: %u in %.3fs (round-trip, batched)\n", kQueries,
                query_s);
  }
  ::close(ctrl);

  server.request_stop();
  server.wait();

  if (server.engine().events_applied() !=
      static_cast<std::uint64_t>(kStories) + votes_sent) {
    std::fprintf(stderr, "perf_serve: applied %llu events, expected %llu\n",
                 static_cast<unsigned long long>(
                     server.engine().events_applied()),
                 static_cast<unsigned long long>(kStories + votes_sent));
    return 1;
  }
  std::printf("\nserve.ingest_votes_per_sec %.0f\n", votes_per_sec);
  return 0;
}
