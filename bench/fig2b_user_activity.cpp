// Figure 2(b): log-log histogram of per-user activity — number of front-page
// submissions and number of votes cast. Both are heavy-tailed: most users
// act once, a few act on well over a hundred stories.

#include "bench/common.h"
#include "src/core/experiment.h"
#include "src/stats/histogram.h"
#include "src/stats/table.h"

namespace {

void print_log_binned(const char* label,
                      const digg::stats::FrequencyCounter& counter) {
  digg::stats::LogHistogram log_hist(2.0);
  for (const auto& [value, count] : counter.items()) {
    for (std::uint64_t i = 0; i < count; ++i)
      log_hist.add(static_cast<std::uint64_t>(value));
  }
  std::printf("%s (log2 bins of activity level -> user count):\n", label);
  std::printf("%s\n", digg::stats::render_bars(log_hist.bins()).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv,
      "Figure 2b: per-user submission and vote activity distributions");

  const core::Fig2bResult r = core::fig2b_user_activity(ctx.synthetic.corpus);
  std::printf("distinct voters: %zu (paper: ~16,600)\n", r.distinct_voters);
  std::printf("distinct front-page submitters: %zu\n\n",
              r.distinct_submitters);

  print_log_binned("votes per user", r.votes_per_user);
  print_log_binned("front-page submissions per user", r.submissions_per_user);

  stats::TextTable table({"statistic", "paper", "measured"});
  table.add_row({"max votes by one user", ">100",
                 stats::fmt(r.votes_per_user.max_value())});
  table.add_row({"users voting exactly once", "majority",
                 stats::fmt_pct(static_cast<double>(r.votes_per_user.count(1)) /
                                static_cast<double>(r.distinct_voters))});
  table.add_row({"vote-count power-law alpha", "~2 (slope of Fig. 2b)",
                 stats::fmt(r.votes_fit.alpha, 2)});
  std::printf("%s", table.render().c_str());
  return 0;
}
