// Corpus storage benchmark: CSV load vs binary snapshot save/load on the
// standard calibrated corpus. The snapshot format exists to make repeated
// analysis runs cheap, so the number that matters is the load-path speedup
// (acceptance bar: snapshot load at least 5x faster than CSV load).
//
// With --json <path> the metrics snapshot (data.snapshot_{load,save}_bytes,
// *_us histograms, data.corpus_vote_column_bytes) plus wall clock land in
// the BENCH_corpus_io.json perf-trajectory format.

#include <unistd.h>

#include <chrono>
#include <filesystem>

#include "bench/common.h"
#include "src/data/io.h"
#include "src/data/snapshot.h"

namespace {

template <typename F>
double best_of_ms(int reps, F&& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    work();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  namespace fs = std::filesystem;
  bench::Context ctx = bench::make_context(
      argc, argv, "Corpus I/O: CSV load vs binary snapshot");
  const data::Corpus& corpus = ctx.synthetic.corpus;
  std::printf("total votes: %zu\n\n", corpus.vote_store.total_votes());

  const fs::path dir = fs::temp_directory_path() /
                       ("digg_perf_corpus_io_" + std::to_string(::getpid()));
  const fs::path csv_dir = dir / "csv";
  const fs::path snap_path = dir / "corpus.snap";
  constexpr int kReps = 5;

  const double csv_save_ms =
      best_of_ms(kReps, [&] { data::save_corpus(corpus, csv_dir); });
  const double csv_load_ms = best_of_ms(kReps, [&] {
    const data::Corpus c = data::load_corpus(csv_dir);
    if (c.story_count() != corpus.story_count()) std::abort();
  });
  const double snap_save_ms =
      best_of_ms(kReps, [&] { data::save_snapshot(corpus, snap_path); });
  const double snap_load_ms = best_of_ms(kReps, [&] {
    const data::Corpus c = data::load_snapshot(snap_path);
    if (c.story_count() != corpus.story_count()) std::abort();
  });

  std::uintmax_t csv_bytes = 0;
  for (const char* name :
       {"network.csv", "stories.csv", "votes.csv", "top_users.csv"})
    csv_bytes += fs::file_size(csv_dir / name);
  const std::uintmax_t snap_bytes = fs::file_size(snap_path);

  std::printf("path                best of %d     size\n", kReps);
  std::printf("CSV save        %10.1f ms  %7.1f MiB\n", csv_save_ms,
              static_cast<double>(csv_bytes) / (1024.0 * 1024.0));
  std::printf("CSV load        %10.1f ms\n", csv_load_ms);
  std::printf("snapshot save   %10.1f ms  %7.1f MiB\n", snap_save_ms,
              static_cast<double>(snap_bytes) / (1024.0 * 1024.0));
  std::printf("snapshot load   %10.1f ms\n\n", snap_load_ms);
  const double speedup = csv_load_ms / snap_load_ms;
  std::printf("snapshot load speedup over CSV load: %.1fx %s\n", speedup,
              speedup >= 5.0 ? "(meets the 5x bar)" : "(BELOW the 5x bar)");

  fs::remove_all(dir);
  return speedup >= 5.0 ? 0 : 1;
}
