// Corpus storage benchmark: CSV load vs binary snapshot save/load vs the
// zero-copy mmap path on the standard calibrated corpus, plus a large-corpus
// leg that exercises the out-of-core pipeline end to end: stream-generate a
// million-user corpus straight to disk (bounded RSS), mmap-load it in
// milliseconds, and replay its votes through the stream engine.
//
// The snapshot format exists to make repeated analysis runs cheap, so the
// numbers that matter are the load-path speedup (acceptance bar: snapshot
// load at least 5x faster than CSV load) and the mmap load time, which must
// stay O(metadata), independent of the vote volume.
//
// With --json <path> the metrics snapshot (data.snapshot_{load,save}_bytes,
// *_us histograms, data.corpus_vote_column_bytes, and the gated gauges
// data.snapshot_mmap_load_us / data.generation_peak_rss /
// stream.bench_votes_per_sec from the large leg, and
// data.scenario_gen_votes_per_sec from the scenario-engine leg) plus wall
// clock land in the BENCH_corpus_io.json perf-trajectory format.
//
// Extra flags (stripped before the common seed/--json parsing):
//   --large-users N    users in the large leg            (default 1000000)
//   --large-stories N  stories in the large leg          (default 400)
//   --skip-large       skip the large leg entirely (quick local runs; the
//                      gated large-leg gauges are then not emitted)

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <vector>

#include "bench/common.h"
#include "src/data/io.h"
#include "src/data/snapshot.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace {

template <typename F>
double best_of_ms(int reps, F&& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    work();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  namespace fs = std::filesystem;

  // Strip the flags common.h does not know before make_context sees argv.
  std::size_t large_users = 1000000;
  std::size_t large_stories = 400;
  bool skip_large = false;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const auto size_arg = [&](const char* flag, std::size_t& out) {
      if (std::strcmp(argv[i], flag) != 0) return false;
      std::uint64_t v = 0;
      if (i + 1 >= argc || !bench::parse_seed_strict(argv[i + 1], v) ||
          v == 0) {
        std::fprintf(stderr, "%s: %s wants a positive integer\n", argv[0],
                     flag);
        std::exit(2);
      }
      out = static_cast<std::size_t>(v);
      ++i;
      return true;
    };
    if (std::strcmp(argv[i], "--skip-large") == 0)
      skip_large = true;
    else if (!size_arg("--large-users", large_users) &&
             !size_arg("--large-stories", large_stories))
      passthrough.push_back(argv[i]);
  }

  bench::Context ctx =
      bench::make_context(static_cast<int>(passthrough.size()),
                          passthrough.data(),
                          "Corpus I/O: CSV vs snapshot vs mmap");
  const data::Corpus& corpus = ctx.synthetic.corpus;
  std::printf("total votes: %zu\n\n", corpus.vote_store.total_votes());

  const fs::path dir = fs::temp_directory_path() /
                       ("digg_perf_corpus_io_" + std::to_string(::getpid()));
  const fs::path csv_dir = dir / "csv";
  const fs::path snap_path = dir / "corpus.snap";
  constexpr int kReps = 5;

  const double csv_save_ms =
      best_of_ms(kReps, [&] { data::save_corpus(corpus, csv_dir); });
  const double csv_load_ms = best_of_ms(kReps, [&] {
    const data::Corpus c = data::load_corpus(csv_dir);
    if (c.story_count() != corpus.story_count()) std::abort();
  });
  const double snap_save_ms =
      best_of_ms(kReps, [&] { data::save_snapshot(corpus, snap_path); });
  const double snap_load_ms = best_of_ms(kReps, [&] {
    const data::Corpus c = data::load_snapshot(snap_path);
    if (c.story_count() != corpus.story_count()) std::abort();
  });
  const double mmap_load_ms = best_of_ms(kReps, [&] {
    const data::Corpus c = data::load_snapshot_mmap(snap_path);
    if (c.story_count() != corpus.story_count()) std::abort();
  });

  std::uintmax_t csv_bytes = 0;
  for (const char* name :
       {"network.csv", "stories.csv", "votes.csv", "top_users.csv"})
    csv_bytes += fs::file_size(csv_dir / name);
  const std::uintmax_t snap_bytes = fs::file_size(snap_path);

  std::printf("path                best of %d     size\n", kReps);
  std::printf("CSV save        %10.1f ms  %7.1f MiB\n", csv_save_ms,
              static_cast<double>(csv_bytes) / (1024.0 * 1024.0));
  std::printf("CSV load        %10.1f ms\n", csv_load_ms);
  std::printf("snapshot save   %10.1f ms  %7.1f MiB\n", snap_save_ms,
              static_cast<double>(snap_bytes) / (1024.0 * 1024.0));
  std::printf("snapshot load   %10.1f ms\n", snap_load_ms);
  std::printf("mmap load       %10.1f ms\n\n", mmap_load_ms);
  const double speedup = csv_load_ms / snap_load_ms;
  std::printf("snapshot load speedup over CSV load: %.1fx %s\n", speedup,
              speedup >= 5.0 ? "(meets the 5x bar)" : "(BELOW the 5x bar)");
  fs::remove_all(dir);

  // Scenario-engine generation throughput: the stochastic model is the
  // expensive registered model (per-user consideration clocks instead of
  // closed-form channels), so its votes/sec is the gated number — a
  // regression here means the pluggable-model seam got slower, not just
  // one figure bench.
  {
    data::ScenarioSpec spec =
        data::make_scenario("stochastic", ctx.synthetic.seed);
    data::downscale(spec, 4000, 120);
    std::size_t scenario_votes = 0;
    const double scen_ms = best_of_ms(3, [&] {
      stats::Rng rng(spec.seed);
      const data::SyntheticCorpus sc =
          data::generate_corpus(spec.params, rng);
      scenario_votes = sc.corpus.vote_store.total_votes();
      if (sc.corpus.story_count() != spec.params.story_count) std::abort();
    });
    const double scen_votes_per_sec =
        static_cast<double>(scenario_votes) / (scen_ms / 1000.0);
    obs::Registry::global()
        .gauge("data.scenario_gen_votes_per_sec")
        .set(scen_votes_per_sec);
    std::printf(
        "\nscenario generation (stochastic, %zu users): %10.1f ms  "
        "(%zu votes, %.0f votes/s)\n",
        spec.params.user_count, scen_ms, scenario_votes,
        scen_votes_per_sec);
  }

  if (!skip_large) {
    // The out-of-core leg: generation never holds the vote columns, the
    // load is a metadata parse + parallel chunk checksums, and the replay
    // streams straight off the mapping.
    std::printf("\n-- large corpus: %zu users, %zu stories --\n", large_users,
                large_stories);
    const fs::path big_path = fs::temp_directory_path() /
                              ("digg_perf_corpus_io_large_" +
                               std::to_string(::getpid()) + ".snap");
    data::SyntheticParams big;
    big.user_count = large_users;
    big.network.node_count = large_users;
    big.story_count = large_stories;

    stats::Rng rng(ctx.synthetic.seed);
    const auto g0 = std::chrono::steady_clock::now();
    const data::StreamedCorpusInfo info =
        data::generate_corpus_to_snapshot(big, rng, big_path);
    const double gen_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - g0)
                              .count();
    const double peak_rss =
        obs::Registry::global().gauge("data.generation_peak_rss").value();
    std::printf(
        "streamed generation  %10.1f ms  %7.1f MiB file  %zu votes  "
        "peak RSS %.0f MiB\n",
        gen_ms,
        static_cast<double>(fs::file_size(big_path)) / (1024.0 * 1024.0),
        static_cast<std::size_t>(info.total_votes),
        peak_rss / (1024.0 * 1024.0));

    const double big_mmap_ms = best_of_ms(3, [&] {
      const data::Corpus c = data::load_snapshot_mmap(big_path);
      if (c.story_count() != info.story_count) std::abort();
    });
    // Gate the large-corpus number: it is the one that proves O(metadata).
    obs::Registry::global()
        .gauge("data.snapshot_mmap_load_us")
        .set(big_mmap_ms * 1000.0);
    std::printf("mmap load            %10.1f ms\n", big_mmap_ms);

    const data::Corpus big_corpus = data::load_snapshot_mmap(big_path);
    const stream::EventStream es = stream::build_event_stream(big_corpus);
    const double replay_ms = best_of_ms(3, [&] {
      stream::StreamEngine engine(es, big_corpus.network);
      engine.run_all();
      if (engine.events_applied() != es.total_events()) std::abort();
    });
    const double votes_per_sec =
        static_cast<double>(es.total_events()) / (replay_ms / 1000.0);
    obs::Registry::global()
        .gauge("stream.bench_votes_per_sec")
        .set(votes_per_sec);
    std::printf("stream replay        %10.1f ms  (%.2fM votes/s)%s\n",
                replay_ms, votes_per_sec / 1e6,
                votes_per_sec >= 2e6 ? "" : "  (BELOW the 2M/s bar)");
    fs::remove(big_path);
  }

  return speedup >= 5.0 ? 0 : 1;
}
