// Ablation: independent per-story simulation (the calibrated generator's
// assumption) vs whole-site simulation with a shared front-page attention
// budget. If the independence assumption were badly wrong, the headline
// inverse v10 relation would not survive attention competition; this bench
// shows it does, and quantifies what competition changes (total volume,
// per-story votes, promotion share).

#include <cstdio>
#include <cstdlib>

#include "src/core/cascade.h"
#include "src/dynamics/site_sim.h"
#include "src/graph/generators.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

namespace {

using namespace digg;

struct RunSummary {
  std::size_t stories = 0;
  std::size_t promoted = 0;
  double median_promoted_votes = 0.0;
  double spearman_v10_final = 0.0;
};

RunSummary summarize(const platform::Platform& plat,
                     const graph::Digraph& net) {
  RunSummary out;
  out.stories = plat.story_count();
  std::vector<double> promoted_votes;
  std::vector<double> v10s;
  std::vector<double> finals;
  for (platform::StoryId id = 0; id < plat.story_count(); ++id) {
    const platform::Story& s = plat.story(id);
    if (!s.promoted()) continue;
    ++out.promoted;
    promoted_votes.push_back(static_cast<double>(s.vote_count()));
    v10s.push_back(
        static_cast<double>(core::in_network_votes(s, net, 10)));
    finals.push_back(static_cast<double>(s.vote_count()));
  }
  out.median_promoted_votes = stats::summarize(promoted_votes).median;
  if (finals.size() >= 3) {
    try {
      out.spearman_v10_final = stats::spearman(v10s, finals);
    } catch (const std::invalid_argument&) {
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("== Ablation: shared attention vs per-story independence ==\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  stats::Rng net_rng(seed);
  graph::PreferentialAttachmentParams net_params;
  net_params.node_count = 20000;
  net_params.mean_out_degree = 4.0;
  const graph::Digraph net = graph::preferential_attachment(net_params, net_rng);
  stats::Rng pop_rng(seed + 1);
  platform::PopulationParams pop;
  pop.user_count = net_params.node_count;
  const auto users = platform::generate_population(pop, pop_rng);

  const dynamics::TraitsSampler traits = [](dynamics::UserId submitter,
                                            stats::Rng& rng) {
    dynamics::StoryTraits t;
    t.general = rng.uniform(0.03, 0.8);
    t.community = std::min(
        1.0, 0.2 + 0.5 * t.general + (submitter < 100 ? 0.4 : 0.0));
    return t;
  };

  stats::TextTable table({"attention budget (impressions/day)", "stories",
                          "promoted", "median promoted votes",
                          "Spearman(v10, final)"});
  for (const double budget : {40000.0, 160000.0, 640000.0}) {
    platform::Platform plat(
        net, users, std::make_unique<platform::VoteRatePolicy>(25, 8, 360.0));
    dynamics::SiteParams params;
    params.submissions_per_day = 250.0;
    params.front_page_impressions_per_day = budget;
    params.duration = 3.0 * platform::kMinutesPerDay;
    params.step = 2.0;
    dynamics::SiteSimulator sim(plat, params, traits, stats::Rng(seed + 7));
    sim.run();
    const RunSummary s = summarize(plat, net);
    table.add_row({stats::fmt(budget, 0),
                   stats::fmt(static_cast<std::int64_t>(s.stories)),
                   stats::fmt(static_cast<std::int64_t>(s.promoted)),
                   stats::fmt(s.median_promoted_votes, 0),
                   stats::fmt(s.spearman_v10_final, 2)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: per-story vote totals scale with the attention\n"
      "budget, and the inverse v10 signal strengthens as attention grows —\n"
      "when attention is starved, finals compress toward the promotion\n"
      "threshold and early provenance loses its predictive value. The\n"
      "paper's 2006 Digg sits in the attention-rich regime (front-page\n"
      "stories gathered hundreds to thousands of votes).\n");
  return 0;
}
