// Fig. 1 companion: fit the Wu–Huberman novelty-decay law to every promoted
// story's post-promotion vote curve and report the half-life distribution.
// Wu & Huberman measured ~1 day on 30k front-page Digg stories (§2).

#include "bench/common.h"
#include "src/dynamics/novelty.h"
#include "src/stats/histogram.h"
#include "src/stats/summary.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  bench::Context ctx = bench::make_context(
      argc, argv, "Novelty decay: fitted post-promotion half-lives");

  const auto fits =
      dynamics::fit_novelty_decay_all(ctx.synthetic.corpus.front_page);
  std::printf("fitted %zu of %zu promoted stories (>=20 post votes)\n\n",
              fits.size(), ctx.synthetic.corpus.front_page.size());

  std::vector<double> half_lives;
  std::vector<double> rmses;
  for (const auto& fit : fits) {
    half_lives.push_back(fit.half_life_minutes);
    rmses.push_back(fit.rmse);
  }
  stats::LinearHistogram hist(0.0, 4320.0, 18);  // 0..3 days, 4h bins
  hist.add_many(half_lives);
  std::printf("half-life histogram (minutes):\n%s\n",
              stats::render_bars(hist.bins()).c_str());

  const stats::Summary hl = stats::summarize(half_lives);
  const stats::Summary err = stats::summarize(rmses);
  stats::TextTable table({"statistic", "reference", "measured"});
  table.add_row({"median half-life", "~1440 min (Wu & Huberman)",
                 stats::fmt(hl.median, 0) + " min"});
  table.add_row({"interquartile range", "-",
                 stats::fmt(hl.q1, 0) + " - " + stats::fmt(hl.q3, 0) + " min"});
  table.add_row({"median fit RMSE (votes)", "-", stats::fmt(err.median, 1)});
  std::printf("%s", table.render().c_str());
  return 0;
}
