// Library micro-benchmarks (google-benchmark): the hot paths of the
// reproduction pipeline — graph construction, visibility/influence updates,
// cascade extraction, the vote simulator, and C4.5 training — plus
// thread-scaling sweeps of the parallel runtime (Arg = DIGG_THREADS).
//
// `--json <path>` (ours, stripped before google-benchmark sees argv) dumps
// the obs metrics snapshot plus total wall clock as the BENCH_<name>.json
// perf-trajectory format; scripts/bench_snapshot.sh uses it to refresh
// BENCH_parallel.json at the repo root.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <string>

#include "src/obs/metrics.h"

#include "src/core/cascade.h"
#include "src/core/experiment.h"
#include "src/core/influence.h"
#include "src/core/predictor.h"
#include "src/data/synthetic.h"
#include "src/dynamics/vote_model.h"
#include "src/graph/centrality.h"
#include "src/graph/generators.h"
#include "src/graph/traversal.h"
#include "src/ml/c45.h"
#include "src/ml/validation.h"
#include "src/runtime/thread_pool.h"
#include "src/stats/bootstrap.h"

namespace {

using namespace digg;

const data::SyntheticCorpus& corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.user_count = 8000;
    params.story_count = 300;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

void BM_GraphBuildPreferentialAttachment(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stats::Rng rng(7);
    graph::PreferentialAttachmentParams params;
    params.node_count = n;
    benchmark::DoNotOptimize(graph::preferential_attachment(params, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_GraphBuildPreferentialAttachment)->Arg(1000)->Arg(10000);

void BM_BfsGiantComponent(benchmark::State& state) {
  const graph::Digraph& g = corpus().corpus.network;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::giant_component_fraction(g));
  }
}
BENCHMARK(BM_BfsGiantComponent);

void BM_CascadeExtraction(benchmark::State& state) {
  const auto& c = corpus().corpus;
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& story : c.front_page)
      acc += core::in_network_votes(story, c.network, 10);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.front_page.size()));
}
BENCHMARK(BM_CascadeExtraction);

void BM_InfluenceProfile(benchmark::State& state) {
  const auto& c = corpus().corpus;
  for (auto _ : state) {
    std::size_t acc = 0;
    for (const auto& story : c.front_page)
      acc += core::influence_profile(story, c.network, {1, 11, 21}).back();
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.front_page.size()));
}
BENCHMARK(BM_InfluenceProfile);

void BM_VoteSimulatorOneStory(benchmark::State& state) {
  stats::Rng net_rng(5);
  graph::PreferentialAttachmentParams net_params;
  net_params.node_count = 8000;
  const graph::Digraph network =
      graph::preferential_attachment(net_params, net_rng);
  for (auto _ : state) {
    platform::Platform plat(network,
                            std::vector<platform::UserProfile>(8000),
                            platform::make_june2006_policy());
    dynamics::VoteModelParams params;
    params.step = 2.0;
    dynamics::VoteSimulator sim(plat, params, stats::Rng(9));
    const auto id = plat.submit(0, 0.6, 0.0);
    benchmark::DoNotOptimize(sim.run_story(id, {0.6, 0.5}));
  }
}
BENCHMARK(BM_VoteSimulatorOneStory);

void BM_C45Training(benchmark::State& state) {
  const auto& c = corpus().corpus;
  const auto features = core::extract_features(c.front_page, c.network);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::InterestingnessPredictor::train(features));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(features.size()));
}
BENCHMARK(BM_C45Training);

void BM_FeatureExtraction(benchmark::State& state) {
  const auto& c = corpus().corpus;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::extract_features(c.front_page, c.network));
  }
}
BENCHMARK(BM_FeatureExtraction);

// ------------------------------------------------------- thread scaling --
// Arg(k) pins the runtime to k threads (overriding DIGG_THREADS) for the
// measurement; results are bit-identical across args, only wall time moves.
// UseRealTime: the work happens on pool threads, CPU time of the driving
// thread is meaningless.

class ThreadSweep : public benchmark::Fixture {
 public:
  void SetUp(benchmark::State& state) override {
    runtime::set_default_threads(static_cast<unsigned>(state.range(0)));
  }
  void TearDown(benchmark::State&) override {
    runtime::set_default_threads(0);
  }
};

BENCHMARK_DEFINE_F(ThreadSweep, Fig3aInfluence)(benchmark::State& state) {
  const auto& c = corpus().corpus;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::fig3a_influence(c));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(c.front_page.size()));
}
BENCHMARK_REGISTER_F(ThreadSweep, Fig3aInfluence)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

BENCHMARK_DEFINE_F(ThreadSweep, CrossValidation)(benchmark::State& state) {
  // Front page + upcoming: both label classes, 10x the training rows of the
  // front page alone, so each fold trains a non-trivial tree.
  const auto& c = corpus().corpus;
  std::vector<data::Story> stories = c.front_page;
  stories.insert(stories.end(), c.upcoming.begin(), c.upcoming.end());
  const auto features = core::extract_features(stories, c.network);
  for (auto _ : state) {
    stats::Rng rng(17);
    benchmark::DoNotOptimize(core::cross_validate_predictor(
        features, core::FeatureSet::kPaper, 10, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(features.size()));
}
BENCHMARK_REGISTER_F(ThreadSweep, CrossValidation)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

BENCHMARK_DEFINE_F(ThreadSweep, BootstrapMeanCi)(benchmark::State& state) {
  std::vector<double> data(2000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<double>(i % 97) / 97.0;
  for (auto _ : state) {
    stats::Rng rng(23);
    benchmark::DoNotOptimize(
        stats::bootstrap_mean_ci(data, 2000, 0.95, rng));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          2000);
}
BENCHMARK_REGISTER_F(ThreadSweep, BootstrapMeanCi)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

BENCHMARK_DEFINE_F(ThreadSweep, Betweenness)(benchmark::State& state) {
  const graph::Digraph& g = corpus().corpus.network;
  for (auto _ : state) {
    benchmark::DoNotOptimize(graph::betweenness(g, /*source_stride=*/16));
  }
}
BENCHMARK_REGISTER_F(ThreadSweep, Betweenness)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  const auto start = std::chrono::steady_clock::now();
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (!json_path.empty()) {
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
    // Seed 42 is the fixed corpus seed above.
    if (!digg::obs::write_bench_report(json_path, "perf_micro", 42, wall_ms))
      return 1;
  }
  return 0;
}
