// Ablation of the two spreading mechanisms (§5.1 / DESIGN.md): regenerate
// the corpus with the fan channel or the discovery channel disabled and
// compare what remains of the paper's phenomena.

#include <cstdio>
#include <cstdlib>

#include "src/core/ablation.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("== Ablation: the two spreading mechanisms ==\n");
  std::printf("seed=%llu (three corpora, identical except the ablation)\n\n",
              static_cast<unsigned long long>(seed));

  data::SyntheticParams params;
  params.story_count = 600;  // smaller world: three full generations
  const core::MechanismAblationResult r =
      core::mechanism_ablation(params, seed);

  stats::TextTable table({"variant", "front page", "upcoming", "median final",
                          "interesting frac", "mean v10",
                          "Spearman(v10, final)"});
  auto add = [&](const core::AblationVariant& v) {
    table.add_row({v.name, stats::fmt(static_cast<std::int64_t>(v.front_page)),
                   stats::fmt(static_cast<std::int64_t>(v.upcoming)),
                   stats::fmt(v.median_final_votes, 0),
                   stats::fmt_pct(v.interesting_fraction),
                   stats::fmt(v.mean_v10, 1),
                   stats::fmt(v.spearman_v10_final, 2)});
  };
  add(r.full);
  add(r.no_fan_channel);
  add(r.no_discovery);
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape:\n"
      "  no fan channel -> promotions collapse (the network does the\n"
      "    promoting, §1) and the v10 signal disappears (mean v10 ~ 0);\n"
      "  no discovery   -> only community-driven stories survive, early\n"
      "    votes are almost all in-network, and final counts shrink toward\n"
      "    community size regardless of general appeal.\n");
  return 0;
}
