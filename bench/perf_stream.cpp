// Streaming-engine benchmark: replay the standard calibrated corpus as one
// time-ordered vote stream and report ingest throughput (votes/sec), plus
// the checkpoint save/restore cost that makes a replay killable. A batch
// feature-extraction pass over the same stories runs for scale: the stream
// engine maintains the same quantities incrementally, so the two wall
// clocks bound what "pay per vote" vs "pay per recompute" buys.
//
// With --json <path> the metrics snapshot (stream.votes_ingested,
// stream.vis_rebuilds, stream.state_bytes, checkpoint latency histograms,
// and the stream.bench_* gauges below) plus wall clock land in the
// BENCH_stream.json perf-trajectory format consumed by scripts/ci.sh's
// bench-regression gate.

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "src/core/features.h"
#include "src/obs/exporter.h"
#include "src/obs/perf.h"
#include "src/stream/checkpoint.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace {

template <typename F>
double best_of_ms(int reps, F&& work) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    work();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < best) best = ms;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace digg;
  namespace fs = std::filesystem;
  // --serve-ms <n>: after measuring, keep the process (and its
  // DIGG_METRICS_PORT exporter) alive for n ms so CI can scrape it.
  // Stripped here because make_context rejects flags it doesn't know.
  long serve_ms = 0;
  std::vector<char*> args(argv, argv + argc);
  for (std::size_t i = 1; i + 1 < args.size(); ++i) {
    if (std::strcmp(args[i], "--serve-ms") == 0) {
      serve_ms = std::strtol(args[i + 1], nullptr, 10);
      args.erase(args.begin() + static_cast<long>(i),
                 args.begin() + static_cast<long>(i) + 2);
      break;
    }
  }
  bench::Context ctx =
      bench::make_context(static_cast<int>(args.size()), args.data(),
                          "Stream engine: vote ingest throughput");
  const data::Corpus& corpus = ctx.synthetic.corpus;
  constexpr int kReps = 5;

  const stream::EventStream es = stream::build_event_stream(corpus);
  const double votes = static_cast<double>(es.total_events());
  std::printf("events: %zu over %zu stories\n\n",
              static_cast<std::size_t>(es.total_events()),
              es.stories.size());

  const double init_ms = best_of_ms(
      kReps, [&] { stream::StreamEngine e(es, corpus.network); });
  const double replay_ms = best_of_ms(kReps, [&] {
    stream::StreamEngine e(es, corpus.network);
    e.run_all();
    if (e.events_applied() != es.total_events()) std::abort();
  });
  const double votes_per_sec = votes / (replay_ms / 1e3);

  // Hardware-counter pass: one extra full replay under a perf_event group.
  // Invalid readings (no PMU, paranoid kernel) publish nothing, so the
  // stream.bench_ipc / _cache_miss_pct gauges simply vanish from the JSON
  // on machines that cannot measure them.
  obs::PerfReading perf_reading;
  {
    obs::PerfCounters counters;
    counters.start();
    stream::StreamEngine e(es, corpus.network);
    e.run_all();
    perf_reading = counters.stop();
  }
  if (perf_reading.valid && perf_reading.cycles != 0) {
    obs::Registry::global().gauge("stream.bench_ipc").set(perf_reading.ipc());
    if (perf_reading.cache_references != 0)
      obs::Registry::global()
          .gauge("stream.bench_cache_miss_pct")
          .set(perf_reading.cache_miss_pct());
  }

  const double batch_ms = best_of_ms(kReps, [&] {
    const auto rows = core::extract_features(corpus.front_page, corpus.network);
    if (rows.size() != corpus.front_page.size()) std::abort();
  });

  // Online Bayes-fit replay: same stream with the Gamma-Poisson fit hook
  // armed. The gated gauge is the *marginal* cost per vote — the hook's
  // O(1)-amortised discipline is the acceptance bar, so it is expressed in
  // ns/vote rather than as a second throughput number.
  const double bayes_replay_ms = best_of_ms(kReps, [&] {
    stream::StreamParams bp;
    bp.bayes.enabled = true;
    stream::StreamEngine e(es, corpus.network, bp);
    e.run_all();
    if (e.events_applied() != es.total_events()) std::abort();
  });
  const double bayes_ns_per_vote = bayes_replay_ms * 1e6 / votes;

  stream::StreamEngine engine(es, corpus.network);
  engine.run_until(es.total_events() / 2);
  const fs::path dir = fs::temp_directory_path() /
                       ("digg_perf_stream_" + std::to_string(::getpid()));
  const fs::path ckpt = dir / "mid.ckpt";
  const double save_ms =
      best_of_ms(kReps, [&] { engine.save_checkpoint(ckpt); });
  const double restore_ms =
      best_of_ms(kReps, [&] { engine.restore_checkpoint(ckpt); });
  std::error_code ec;
  const auto ckpt_bytes = fs::file_size(ckpt, ec);
  fs::remove_all(dir, ec);

  std::printf("engine init (validate + fingerprint): %8.2f ms\n", init_ms);
  std::printf("full replay:                          %8.2f ms  (%.0f votes/s)\n",
              replay_ms, votes_per_sec);
  std::printf("batch feature extraction (front page):%8.2f ms\n", batch_ms);
  std::printf("replay with Bayes fit hook:           %8.2f ms  (%.0f ns/vote)\n",
              bayes_replay_ms, bayes_ns_per_vote);
  std::printf("checkpoint save:                      %8.2f ms  (%zu bytes)\n",
              save_ms, static_cast<std::size_t>(ec ? 0 : ckpt_bytes));
  std::printf("checkpoint restore (validated):       %8.2f ms\n", restore_ms);
  if (perf_reading.valid && perf_reading.cycles != 0)
    std::printf("replay IPC:                           %8.2f  (%.1f%% cache miss)\n",
                perf_reading.ipc(), perf_reading.cache_miss_pct());

  // Gauges for the perf trajectory: bench_check.py flags regressions on
  // these (higher is better for throughput, lower for latencies).
  auto& reg = obs::Registry::global();
  reg.gauge("stream.bench_votes_per_sec").set(votes_per_sec);
  reg.gauge("stream.bench_replay_ms").set(replay_ms);
  reg.gauge("stream.bench_checkpoint_save_ms").set(save_ms);
  reg.gauge("stream.bench_checkpoint_restore_ms").set(restore_ms);
  reg.gauge("stream.bayes_fit_ns_per_vote").set(bayes_ns_per_vote);

  if (serve_ms > 0) {
    std::printf("serving metrics for %ld ms (exporter port %u)\n", serve_ms,
                static_cast<unsigned>(obs::exporter_port()));
    std::fflush(stdout);
    std::this_thread::sleep_for(std::chrono::milliseconds(serve_ms));
  }
  return 0;
}
