// Section 6 future work, experiment 2: influence cascades on modular
// networks (Galstyan & Cohen). On a planted-partition graph, a cascade
// seeded inside one community saturates that community before (maybe)
// jumping across — mirroring the paper's narrow-community spreading. We
// sweep the inter-community edge probability and report cascade reach,
// plus detected-community quality, plus the two-mechanism vote model run on
// modular vs non-modular networks.

#include <cstdio>
#include <cstdlib>

#include "src/dynamics/cascade_sim.h"
#include "src/graph/community.h"
#include "src/graph/generators.h"
#include "src/stats/table.h"

int main(int argc, char** argv) {
  using namespace digg;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf("== Ablation: cascades on modular networks ==\n");
  std::printf("seed=%llu\n\n", static_cast<unsigned long long>(seed));

  stats::Rng rng(seed);
  stats::TextTable table({"p_out/p_in", "modularity Q", "detected Rand idx",
                          "mean cascade reach", "global cascade prob"});
  for (const double ratio : {0.0, 0.01, 0.05, 0.2, 1.0}) {
    graph::PlantedPartitionParams params;
    params.node_count = 1200;
    params.communities = 6;
    params.p_in = 0.03;
    params.p_out = params.p_in * ratio;
    const graph::Digraph g = graph::planted_partition(params, rng);
    const auto truth = graph::planted_communities(params);

    stats::Rng lp_rng = rng.fork();
    const auto detected = graph::label_propagation(g, lp_rng);
    const double q = graph::modularity(g, truth);
    const double rand_idx = graph::rand_index(detected, truth);

    dynamics::CascadeParams cascade;
    cascade.activation_prob = 0.06;
    stats::Rng c_rng = rng.fork();
    const double mean_reach =
        dynamics::mean_cascade_size(g, cascade, 100, c_rng) /
        static_cast<double>(params.node_count);
    stats::Rng g_rng = rng.fork();
    const double global_prob = dynamics::global_cascade_probability(
        g, cascade, 100, /*global_fraction=*/0.5, g_rng);

    table.add_row({stats::fmt(ratio, 2), stats::fmt(q, 3),
                   stats::fmt(rand_idx, 3), stats::fmt_pct(mean_reach),
                   stats::fmt_pct(global_prob)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "expected shape: with strong modularity (small p_out/p_in) cascades\n"
      "stall at roughly one community (~17%% reach here) and rarely go\n"
      "global; as communities blur, reach and global probability rise —\n"
      "the structural mechanism behind narrow-community stories (§5.1).\n");
  return 0;
}
