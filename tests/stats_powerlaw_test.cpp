#include "src/stats/powerlaw.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "src/stats/rng.h"

namespace digg::stats {
namespace {

TEST(HurwitzZeta, MatchesRiemannZetaAtQ1) {
  // zeta(2) = pi^2/6, zeta(3) ~ 1.2020569...
  EXPECT_NEAR(hurwitz_zeta(2.0, 1.0), std::numbers::pi * std::numbers::pi / 6.0,
              1e-8);
  EXPECT_NEAR(hurwitz_zeta(3.0, 1.0), 1.2020569031595943, 1e-8);
}

TEST(HurwitzZeta, ShiftIdentity) {
  // zeta(s, q) = zeta(s, q+1) + q^-s.
  const double s = 2.5;
  const double q = 3.0;
  EXPECT_NEAR(hurwitz_zeta(s, q),
              hurwitz_zeta(s, q + 1.0) + std::pow(q, -s), 1e-10);
}

TEST(HurwitzZeta, RejectsBadArguments) {
  EXPECT_THROW(hurwitz_zeta(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(hurwitz_zeta(2.0, 0.0), std::invalid_argument);
}

TEST(FitPowerLaw, RecoversAlphaFromSyntheticData) {
  // The (x_min - 0.5) continuity correction in the discrete MLE is accurate
  // for x_min >= ~5 (Clauset et al.); sample with that cutoff.
  Rng rng(42);
  PowerLawSampler sampler(2.5, 5, 100000);
  std::vector<std::int64_t> data;
  for (int i = 0; i < 20000; ++i) data.push_back(sampler.sample(rng));
  const PowerLawFit fit = fit_power_law(data, 5);
  EXPECT_NEAR(fit.alpha, 2.5, 0.15);
  EXPECT_EQ(fit.n_tail, data.size());
}

TEST(FitPowerLaw, TailOnlyUsesValuesAboveXmin) {
  const std::vector<std::int64_t> data = {1, 1, 1, 5, 6, 7, 8, 9, 10};
  const PowerLawFit fit = fit_power_law(data, 5);
  EXPECT_EQ(fit.n_tail, 6u);
}

TEST(FitPowerLaw, ThrowsWithoutTailData) {
  EXPECT_THROW(fit_power_law({1, 2, 3}, 10), std::invalid_argument);
  EXPECT_THROW(fit_power_law({1, 2, 3}, 0), std::invalid_argument);
}

TEST(FitPowerLaw, ConstantTailGivesVerySteepAlpha) {
  // All observations at x_min: the continuity-corrected MLE gives
  // 1 + 1/ln(x_min/(x_min-0.5)) ~ 10.5 at x_min = 5 — extremely steep.
  const PowerLawFit fit = fit_power_law({5, 5, 5, 5, 5}, 5);
  EXPECT_TRUE(std::isfinite(fit.alpha));
  EXPECT_GT(fit.alpha, 8.0);
}

TEST(KsDistance, ZeroishForPerfectFit) {
  Rng rng(7);
  PowerLawSampler sampler(2.0, 1, 100000);
  std::vector<std::int64_t> data;
  for (int i = 0; i < 20000; ++i) data.push_back(sampler.sample(rng));
  const double d = ks_distance(data, 2.0, 1);
  EXPECT_LT(d, 0.02);
}

TEST(KsDistance, LargeForWrongAlpha) {
  Rng rng(7);
  PowerLawSampler sampler(2.0, 1, 100000);
  std::vector<std::int64_t> data;
  for (int i = 0; i < 5000; ++i) data.push_back(sampler.sample(rng));
  EXPECT_GT(ks_distance(data, 4.0, 1), 0.1);
}

TEST(FitPowerLawAuto, FindsReasonableCutoffAndAlpha) {
  Rng rng(11);
  // Power law with a non-power-law head: values below 4 are uniform noise.
  PowerLawSampler sampler(2.2, 4, 100000);
  std::vector<std::int64_t> data;
  for (int i = 0; i < 8000; ++i) data.push_back(sampler.sample(rng));
  for (int i = 0; i < 2000; ++i) data.push_back(rng.uniform_int(1, 3));
  const PowerLawFit fit = fit_power_law_auto(data);
  EXPECT_NEAR(fit.alpha, 2.2, 0.35);
  EXPECT_GE(fit.x_min, 2);
}

TEST(FitPowerLawAuto, ThrowsOnEmptyOrNonPositive) {
  EXPECT_THROW(fit_power_law_auto({}), std::invalid_argument);
  EXPECT_THROW(fit_power_law_auto({0, 0, -1}), std::invalid_argument);
}

}  // namespace
}  // namespace digg::stats
