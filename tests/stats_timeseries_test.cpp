#include "src/stats/timeseries.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace digg::stats {
namespace {

TimeSeries make_series() {
  TimeSeries ts;
  ts.append(0.0, 1.0);
  ts.append(10.0, 5.0);
  ts.append(20.0, 5.0);
  ts.append(40.0, 25.0);
  return ts;
}

TEST(TimeSeries, AppendRejectsBackwardsTime) {
  TimeSeries ts;
  ts.append(5.0, 1.0);
  EXPECT_THROW(ts.append(4.0, 2.0), std::invalid_argument);
  ts.append(5.0, 2.0);  // equal time is fine (votes share a step)
  EXPECT_EQ(ts.size(), 2u);
}

TEST(TimeSeries, AtInterpolatesLinearly) {
  const TimeSeries ts = make_series();
  EXPECT_DOUBLE_EQ(ts.at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(5.0), 3.0);
  EXPECT_DOUBLE_EQ(ts.at(15.0), 5.0);
  EXPECT_DOUBLE_EQ(ts.at(30.0), 15.0);
}

TEST(TimeSeries, AtClampsOutsideRange) {
  const TimeSeries ts = make_series();
  EXPECT_DOUBLE_EQ(ts.at(-100.0), 1.0);
  EXPECT_DOUBLE_EQ(ts.at(100.0), 25.0);
}

TEST(TimeSeries, AtThrowsOnEmpty) {
  TimeSeries ts;
  EXPECT_THROW(ts.at(1.0), std::logic_error);
}

TEST(TimeSeries, ResampleProducesRegularGrid) {
  const TimeSeries ts = make_series();
  const TimeSeries r = ts.resample(40.0, 5);
  ASSERT_EQ(r.size(), 5u);
  EXPECT_DOUBLE_EQ(r.times()[0], 0.0);
  EXPECT_DOUBLE_EQ(r.times()[4], 40.0);
  EXPECT_DOUBLE_EQ(r.values()[0], 1.0);
  EXPECT_DOUBLE_EQ(r.values()[4], 25.0);
}

TEST(TimeSeries, ResampleOfEmptyIsZeros) {
  TimeSeries ts;
  const TimeSeries r = ts.resample(10.0, 3);
  ASSERT_EQ(r.size(), 3u);
  EXPECT_DOUBLE_EQ(r.values()[1], 0.0);
}

TEST(TimeSeries, ResampleRejectsTooFewPoints) {
  EXPECT_THROW(make_series().resample(10.0, 1), std::invalid_argument);
}

TEST(TimeSeries, TimeToReachInterpolatesCrossing) {
  const TimeSeries ts = make_series();
  const auto t = ts.time_to_reach(3.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 5.0);
}

TEST(TimeSeries, TimeToReachNulloptWhenNeverReached) {
  EXPECT_FALSE(make_series().time_to_reach(1000.0).has_value());
}

TEST(TimeSeries, TimeToReachAtFirstSample) {
  const auto t = make_series().time_to_reach(1.0);
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(*t, 0.0);
}

TEST(TimeSeries, HalfLifeOfLinearGrowth) {
  TimeSeries ts;
  for (int i = 0; i <= 100; ++i)
    ts.append(static_cast<double>(i), static_cast<double>(i));
  const auto hl = ts.half_life(0.0);
  ASSERT_TRUE(hl.has_value());
  EXPECT_NEAR(*hl, 50.0, 1.0);
}

TEST(TimeSeries, HalfLifeNulloptWithoutGrowth) {
  TimeSeries ts;
  ts.append(0.0, 5.0);
  ts.append(10.0, 5.0);
  EXPECT_FALSE(ts.half_life(0.0).has_value());
  TimeSeries empty;
  EXPECT_FALSE(empty.half_life(0.0).has_value());
}

TEST(TimeSeries, HalfLifeFromMidSeries) {
  TimeSeries ts;
  ts.append(0.0, 0.0);
  ts.append(10.0, 100.0);   // fast early growth
  ts.append(20.0, 150.0);   // remaining growth from t=10: 100
  ts.append(30.0, 200.0);
  const auto hl = ts.half_life(10.0);
  ASSERT_TRUE(hl.has_value());
  EXPECT_DOUBLE_EQ(*hl, 10.0);  // reaches 150 at t=20
}

}  // namespace
}  // namespace digg::stats
