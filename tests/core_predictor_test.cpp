#include "src/core/predictor.h"

#include <gtest/gtest.h>

namespace digg::core {
namespace {

// Synthetic feature sample embodying the paper's signal: high v10 with small
// fan base -> uninteresting; low v10 -> interesting.
std::vector<StoryFeatures> paper_like_sample(std::size_t n = 120) {
  std::vector<StoryFeatures> sample;
  stats::Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) {
    StoryFeatures f;
    f.story = static_cast<platform::StoryId>(i);
    const bool interesting = i % 2 == 0;
    f.interesting = interesting;
    f.final_votes = interesting ? 1500 : 200;
    f.v10 = interesting ? static_cast<std::size_t>(rng.uniform_int(0, 4))
                        : static_cast<std::size_t>(rng.uniform_int(6, 10));
    f.v6 = f.v10 / 2;
    f.v20 = f.v10 * 2;
    f.fans1 = interesting ? static_cast<std::size_t>(rng.uniform_int(0, 50))
                          : static_cast<std::size_t>(rng.uniform_int(50, 400));
    f.influence10 = f.fans1 * 2;
    sample.push_back(f);
  }
  return sample;
}

TEST(Encode, PaperFeatureSetIsV10Fans1) {
  StoryFeatures f;
  f.v6 = 1;
  f.v10 = 2;
  f.v20 = 3;
  f.fans1 = 4;
  f.influence10 = 5;
  const auto row = InterestingnessPredictor::encode(f, FeatureSet::kPaper);
  EXPECT_EQ(row, (std::vector<double>{2.0, 4.0}));
}

TEST(Encode, ExtendedFeatureSetHasFiveAttributes) {
  StoryFeatures f;
  f.v6 = 1;
  f.v10 = 2;
  f.v20 = 3;
  f.fans1 = 4;
  f.influence10 = 5;
  const auto row = InterestingnessPredictor::encode(f, FeatureSet::kExtended);
  EXPECT_EQ(row, (std::vector<double>{1.0, 2.0, 3.0, 4.0, 5.0}));
}

TEST(MakeDataset, SchemaMatchesFeatureSet) {
  const auto sample = paper_like_sample(10);
  const ml::Dataset paper =
      InterestingnessPredictor::make_dataset(sample, FeatureSet::kPaper);
  EXPECT_EQ(paper.attribute_count(), 2u);
  EXPECT_EQ(paper.attribute(0).name, "v10");
  EXPECT_EQ(paper.attribute(1).name, "fans1");
  EXPECT_EQ(paper.class_names()[1], "yes");
  EXPECT_EQ(paper.size(), 10u);

  const ml::Dataset ext =
      InterestingnessPredictor::make_dataset(sample, FeatureSet::kExtended);
  EXPECT_EQ(ext.attribute_count(), 5u);
}

TEST(Predictor, LearnsPaperSignal) {
  const auto sample = paper_like_sample();
  const InterestingnessPredictor p = InterestingnessPredictor::train(sample);
  StoryFeatures low_v10;
  low_v10.v10 = 1;
  low_v10.fans1 = 20;
  EXPECT_TRUE(p.predict(low_v10));
  StoryFeatures high_v10;
  high_v10.v10 = 9;
  high_v10.fans1 = 200;
  EXPECT_FALSE(p.predict(high_v10));
  EXPECT_GT(p.predict_proba(low_v10), p.predict_proba(high_v10));
}

TEST(Predictor, TreeUsesV10) {
  const auto sample = paper_like_sample();
  const InterestingnessPredictor p = InterestingnessPredictor::train(sample);
  EXPECT_NE(p.tree().render().find("v10"), std::string::npos);
  EXPECT_EQ(p.feature_set(), FeatureSet::kPaper);
}

TEST(Predictor, ThrowsOnEmptySample) {
  EXPECT_THROW(InterestingnessPredictor::train({}), std::invalid_argument);
}

TEST(CrossValidatePredictor, HighAccuracyOnCleanSignal) {
  const auto sample = paper_like_sample();
  stats::Rng rng(7);
  const ml::CrossValidationResult cv =
      cross_validate_predictor(sample, FeatureSet::kPaper, 10, rng);
  EXPECT_EQ(cv.pooled.total(), sample.size());
  EXPECT_GT(cv.pooled.accuracy(), 0.9);
}

TEST(CrossValidatePredictor, ExtendedFeaturesAlsoWork) {
  const auto sample = paper_like_sample();
  stats::Rng rng(9);
  const ml::CrossValidationResult cv =
      cross_validate_predictor(sample, FeatureSet::kExtended, 5, rng);
  EXPECT_GT(cv.pooled.accuracy(), 0.85);
}

}  // namespace
}  // namespace digg::core
