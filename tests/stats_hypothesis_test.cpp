#include "src/stats/hypothesis.h"

#include <gtest/gtest.h>

#include "src/stats/rng.h"

namespace digg::stats {
namespace {

TEST(NormalCdf, KnownValues) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(ChiSquareSf, KnownValues) {
  // dof=1: P(X > 3.841) = 0.05.
  EXPECT_NEAR(chi_square_sf(3.841, 1), 0.05, 0.001);
  // dof=2: P(X > x) = exp(-x/2).
  EXPECT_NEAR(chi_square_sf(5.991, 2), 0.05, 0.001);
  // dof=5 via Wilson-Hilferty: P(X > 11.07) ~ 0.05.
  EXPECT_NEAR(chi_square_sf(11.07, 5), 0.05, 0.01);
  EXPECT_DOUBLE_EQ(chi_square_sf(0.0, 3), 1.0);
  EXPECT_THROW(chi_square_sf(1.0, 0), std::invalid_argument);
}

TEST(MannWhitney, IdenticalSamplesNotSignificant) {
  const std::vector<double> a = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  const TestResult r = mann_whitney_u(a, a);
  EXPECT_GT(r.p_value, 0.9);
}

TEST(MannWhitney, SeparatedSamplesHighlySignificant) {
  std::vector<double> low;
  std::vector<double> high;
  Rng rng(1);
  for (int i = 0; i < 30; ++i) {
    low.push_back(rng.uniform(0.0, 1.0));
    high.push_back(rng.uniform(10.0, 11.0));
  }
  const TestResult r = mann_whitney_u(low, high);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(MannWhitney, DetectsModerateShift) {
  Rng rng(2);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.8, 1.0));
  }
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_LT(r.p_value, 0.01);
}

TEST(MannWhitney, AllTiesGivePValueOne) {
  const std::vector<double> a = {5, 5, 5};
  const std::vector<double> b = {5, 5, 5, 5};
  const TestResult r = mann_whitney_u(a, b);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(MannWhitney, RejectsEmptySamples) {
  EXPECT_THROW(mann_whitney_u({}, {1.0}), std::invalid_argument);
  EXPECT_THROW(mann_whitney_u({1.0}, {}), std::invalid_argument);
}

TEST(ChiSquare2x2, IndependentTableNotSignificant) {
  // Perfectly proportional table: no association.
  const TestResult r = chi_square_2x2(20, 30, 40, 60);
  EXPECT_NEAR(r.statistic, 0.0, 0.3);  // Yates-corrected, near zero
  EXPECT_GT(r.p_value, 0.5);
}

TEST(ChiSquare2x2, StrongAssociationSignificant) {
  const TestResult r = chi_square_2x2(50, 5, 5, 50);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(ChiSquare2x2, DegenerateMarginsHandled) {
  const TestResult r = chi_square_2x2(0, 0, 10, 20);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

TEST(ChiSquare2x2, RejectsNegativeCells) {
  EXPECT_THROW(chi_square_2x2(-1, 2, 3, 4), std::invalid_argument);
  EXPECT_THROW(chi_square_2x2(0, 0, 0, 0), std::invalid_argument);
}

TEST(TwoProportionZ, EqualProportionsNotSignificant) {
  const TestResult r = two_proportion_z(30, 100, 30, 100);
  EXPECT_DOUBLE_EQ(r.statistic, 0.0);
  EXPECT_GT(r.p_value, 0.99);
}

TEST(TwoProportionZ, LargeGapSignificant) {
  const TestResult r = two_proportion_z(80, 100, 30, 100);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.statistic, 0.0);
}

TEST(TwoProportionZ, PaperScaleGapIsBorderline) {
  // The paper's 4/7 vs 5/14 on tiny samples: suggestive, not conclusive —
  // which is why the fig5_roc bench adds a bootstrap CI.
  const TestResult r = two_proportion_z(4, 7, 5, 14);
  EXPECT_GT(r.p_value, 0.05);
  EXPECT_LT(r.p_value, 0.9);
}

TEST(TwoProportionZ, RejectsBadInput) {
  EXPECT_THROW(two_proportion_z(1, 0, 1, 2), std::invalid_argument);
  EXPECT_THROW(two_proportion_z(3, 2, 1, 2), std::invalid_argument);
}

TEST(TwoProportionZ, AllOrNothingPooledVarianceZero) {
  const TestResult r = two_proportion_z(10, 10, 10, 10);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

}  // namespace
}  // namespace digg::stats
