#include "src/core/ablation.h"

#include <gtest/gtest.h>

namespace digg::core {
namespace {

// One shared ablation run (three corpus generations).
const MechanismAblationResult& shared_result() {
  static const MechanismAblationResult result = [] {
    data::SyntheticParams params;
    params.story_count = 250;
    params.vote_model.step = 2.0;
    return mechanism_ablation(params, 42);
  }();
  return result;
}

TEST(MechanismAblation, FullModelShowsPaperPhenomena) {
  const AblationVariant& full = shared_result().full;
  EXPECT_GT(full.front_page, 20u);
  EXPECT_LT(full.spearman_v10_final, -0.3);
  EXPECT_GT(full.mean_v10, 1.0);
  EXPECT_GT(full.median_final_votes, 300.0);
}

TEST(MechanismAblation, NoFanChannelCollapsesPromotion) {
  const AblationVariant& ablated = shared_result().no_fan_channel;
  // Without social browsing the network cannot push stories over the bar:
  // promotions collapse relative to the full model (§1's claim).
  EXPECT_LT(ablated.front_page, shared_result().full.front_page / 3 + 2);
  // Whatever promotes has essentially no in-network votes.
  EXPECT_LT(ablated.mean_v10, 1.0);
}

TEST(MechanismAblation, NoDiscoveryKillsInterestingness) {
  const AblationVariant& ablated = shared_result().no_discovery;
  // Community-only spread: early votes nearly all in-network and nothing
  // reaches the interesting threshold (community saturates first).
  if (ablated.front_page > 0) {
    EXPECT_GT(ablated.mean_v10, 7.0);
    EXPECT_LT(ablated.interesting_fraction, 0.2);
    EXPECT_LT(ablated.median_final_votes,
              shared_result().full.median_final_votes / 2.0);
  }
}

TEST(MechanismAblation, StoryCountsConserved) {
  for (const AblationVariant* v :
       {&shared_result().full, &shared_result().no_fan_channel,
        &shared_result().no_discovery}) {
    EXPECT_EQ(v->front_page + v->upcoming, 250u);
  }
}

TEST(MechanismAblation, VariantNamesSet) {
  EXPECT_EQ(shared_result().full.name, "full model");
  EXPECT_EQ(shared_result().no_fan_channel.name, "no fan channel");
  EXPECT_EQ(shared_result().no_discovery.name, "no discovery");
}

}  // namespace
}  // namespace digg::core
