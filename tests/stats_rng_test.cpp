#include "src/stats/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace digg::stats {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (a.uniform() != b.uniform()) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(Rng, SeedAccessorReturnsSeed) {
  EXPECT_EQ(Rng(42).seed(), 42u);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= v == 2;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntThrowsOnInvertedRange) {
  Rng rng(7);
  EXPECT_THROW(rng.uniform_int(5, 2), std::invalid_argument);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(7);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  EXPECT_FALSE(rng.bernoulli(-0.5));
  EXPECT_TRUE(rng.bernoulli(1.5));
}

TEST(Rng, BernoulliFrequencyNearP) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, PoissonMeanMatches) {
  Rng rng(13);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += static_cast<double>(rng.poisson(4.5));
  EXPECT_NEAR(acc / n, 4.5, 0.1);
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(13);
  EXPECT_EQ(rng.poisson(0.0), 0);
}

TEST(Rng, PoissonNegativeThrows) {
  Rng rng(13);
  EXPECT_THROW(rng.poisson(-1.0), std::invalid_argument);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(17);
  double acc = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) acc += rng.exponential(2.0);
  EXPECT_NEAR(acc / n, 0.5, 0.02);
}

TEST(Rng, ExponentialThrowsOnBadRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, GeometricThrowsOutsideUnit) {
  Rng rng(17);
  EXPECT_THROW(rng.geometric(0.0), std::invalid_argument);
  EXPECT_THROW(rng.geometric(1.5), std::invalid_argument);
  EXPECT_EQ(rng.geometric(1.0), 0);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(99);
  Rng forked = a.fork();
  // The fork must not replay the parent's stream.
  Rng b(99);
  (void)b.fork();
  int same = 0;
  for (int i = 0; i < 32; ++i)
    if (forked.uniform() == b.uniform()) ++same;
  EXPECT_LT(same, 32);
}

TEST(RngSplit, IndependentOfParentDrawOrder) {
  Rng parent(42);
  Rng before = parent.split(3);
  for (int i = 0; i < 100; ++i) (void)parent.uniform();
  Rng after = parent.split(3);
  for (int i = 0; i < 64; ++i)
    EXPECT_DOUBLE_EQ(before.uniform(), after.uniform());
}

TEST(RngSplit, DoesNotPerturbParent) {
  Rng a(42);
  Rng b(42);
  (void)a.split(9);
  (void)a.split(10);
  for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(RngSplit, DistinctIndicesDiverge) {
  Rng parent(7);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (s0.uniform() != s1.uniform()) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(RngSplit, SubstreamDiffersFromParentStream) {
  Rng parent(7);
  Rng sub = parent.split(0);
  Rng fresh(7);
  int differing = 0;
  for (int i = 0; i < 32; ++i)
    if (sub.uniform() != fresh.uniform()) ++differing;
  EXPECT_GT(differing, 0);
}

TEST(RngSplit, SameIndexSameSeedReproduces) {
  EXPECT_DOUBLE_EQ(Rng(11).split(5).uniform(), Rng(11).split(5).uniform());
}

TEST(RngSplit, ComposesWithFork) {
  // fork() keys a fresh substream root; split is then stable on the fork.
  Rng a(13);
  Rng base = a.fork();
  Rng s1 = base.split(2);
  for (int i = 0; i < 10; ++i) (void)base.uniform();
  Rng s2 = base.split(2);
  for (int i = 0; i < 32; ++i)
    EXPECT_DOUBLE_EQ(s1.uniform(), s2.uniform());
}

TEST(PowerLawSampler, SamplesWithinRange) {
  Rng rng(1);
  PowerLawSampler sampler(2.0, 1, 100);
  for (int i = 0; i < 2000; ++i) {
    const auto v = sampler.sample(rng);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
  }
}

TEST(PowerLawSampler, HeavierTailForSmallerAlpha) {
  Rng rng1(5);
  Rng rng2(5);
  PowerLawSampler steep(3.0, 1, 1000);
  PowerLawSampler shallow(1.5, 1, 1000);
  double steep_sum = 0.0;
  double shallow_sum = 0.0;
  for (int i = 0; i < 5000; ++i) {
    steep_sum += static_cast<double>(steep.sample(rng1));
    shallow_sum += static_cast<double>(shallow.sample(rng2));
  }
  EXPECT_GT(shallow_sum, steep_sum);
}

TEST(PowerLawSampler, OnesDominateForSteepAlpha) {
  Rng rng(3);
  PowerLawSampler sampler(3.0, 1, 1000);
  int ones = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i)
    if (sampler.sample(rng) == 1) ++ones;
  // P(1) = 1/zeta(3) ~ 0.83 over a finite range.
  EXPECT_GT(static_cast<double>(ones) / n, 0.7);
}

TEST(PowerLawSampler, RejectsBadParameters) {
  EXPECT_THROW(PowerLawSampler(2.0, 0, 10), std::invalid_argument);
  EXPECT_THROW(PowerLawSampler(2.0, 10, 5), std::invalid_argument);
  EXPECT_THROW(PowerLawSampler(0.0, 1, 10), std::invalid_argument);
}

TEST(ZipfSampler, RanksWithinBounds) {
  Rng rng(1);
  ZipfSampler zipf(50, 1.0);
  for (int i = 0; i < 2000; ++i) {
    const auto r = zipf.sample(rng);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 50u);
  }
}

TEST(ZipfSampler, RankOneMostFrequent) {
  Rng rng(2);
  ZipfSampler zipf(20, 1.2);
  std::vector<int> counts(21, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_EQ(std::max_element(counts.begin() + 1, counts.end()) -
                counts.begin(),
            1);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  Rng rng(4);
  ZipfSampler zipf(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (std::size_t r = 1; r <= 10; ++r)
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, 0.1, 0.015);
}

TEST(ZipfSampler, RejectsBadParameters) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(ZipfSampler(10, -1.0), std::invalid_argument);
}

TEST(DiscreteSampler, RespectsWeights) {
  Rng rng(6);
  DiscreteSampler sampler({1.0, 0.0, 3.0});
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[sampler.sample(rng)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(DiscreteSampler, RejectsDegenerateWeights) {
  EXPECT_THROW(DiscreteSampler({}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({0.0, 0.0}), std::invalid_argument);
  EXPECT_THROW(DiscreteSampler({1.0, -2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace digg::stats
