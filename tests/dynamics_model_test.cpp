// The pluggable-model boundary: registry behaviour, generic parameter
// access, and the determinism contract every Model implementation must
// honour (per-story split(story_id) substreams — story runs must not
// depend on RNG-consumption order).

#include "src/dynamics/model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/dynamics/stochastic_model.h"
#include "src/dynamics/vote_model.h"
#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

using platform::Platform;
using platform::UserProfile;
using platform::VoteCountPolicy;

graph::Digraph make_network(std::uint64_t seed, std::size_t users) {
  stats::Rng rng(seed);
  graph::PreferentialAttachmentParams params;
  params.node_count = users;
  params.mean_out_degree = 4.0;
  return graph::preferential_attachment(params, rng);
}

std::unique_ptr<Platform> make_platform(const graph::Digraph& network) {
  return std::make_unique<Platform>(
      network, std::vector<UserProfile>(network.node_count()),
      std::make_unique<VoteCountPolicy>(43));
}

/// Shrinks a model's horizon/step so test runs stay fast, via the generic
/// parameter interface (which is itself under test here).
void speed_up(Model& model) {
  ASSERT_TRUE(model.set_param("step", 4.0));
  ASSERT_TRUE(model.set_param("horizon", platform::kMinutesPerDay));
}

TEST(ModelRegistry, BuiltinsAreRegistered) {
  EXPECT_TRUE(model_registered(kLegacyModelId));
  EXPECT_TRUE(model_registered(kStochasticModelId));
  EXPECT_FALSE(model_registered("definitely-not-a-model"));

  const std::vector<std::string> ids = registered_model_ids();
  EXPECT_GE(ids.size(), 2u);
  EXPECT_NE(std::find(ids.begin(), ids.end(), kLegacyModelId), ids.end());
  EXPECT_NE(std::find(ids.begin(), ids.end(), kStochasticModelId),
            ids.end());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
}

TEST(ModelRegistry, MakeModelRoundTripsIds) {
  for (const std::string& id : registered_model_ids()) {
    const std::unique_ptr<Model> model = make_model(id);
    ASSERT_NE(model, nullptr);
    EXPECT_EQ(model->id(), id);
  }
}

TEST(ModelRegistry, UnknownIdThrowsListingKnownIds) {
  try {
    (void)make_model("no-such-model");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("no-such-model"), std::string::npos) << what;
    // The error must name the valid choices — it doubles as CLI help.
    EXPECT_NE(what.find(kLegacyModelId), std::string::npos) << what;
    EXPECT_NE(what.find(kStochasticModelId), std::string::npos) << what;
  }
}

TEST(ModelRegistry, RegisterRejectsDuplicateAndNull) {
  // Re-registering a taken id keeps the existing prototype.
  EXPECT_FALSE(register_model(std::make_unique<VoteModel>()));
  EXPECT_THROW((void)register_model(nullptr), std::invalid_argument);
}

TEST(ModelParams, EveryModelExposesMutableParams) {
  for (const std::string& id : registered_model_ids()) {
    const std::unique_ptr<Model> model = make_model(id);
    const std::vector<ModelParam> params = model->params();
    ASSERT_FALSE(params.empty()) << id;
    // Round-trip the first parameter through the by-name setter.
    const ModelParam& first = params.front();
    ASSERT_TRUE(model->set_param(first.name, first.value + 1.0)) << id;
    EXPECT_EQ(model->params().front().value, first.value + 1.0) << id;
    // Unknown names are rejected, not ignored.
    EXPECT_FALSE(model->set_param("not_a_real_knob", 1.0)) << id;
  }
}

TEST(ModelParams, CloneCarriesConfiguredValues) {
  for (const std::string& id : registered_model_ids()) {
    const std::unique_ptr<Model> model = make_model(id);
    const std::string knob = model->params().front().name;
    ASSERT_TRUE(model->set_param(knob, 123.5));
    const std::unique_ptr<Model> copy = model->clone();
    EXPECT_EQ(copy->id(), id);
    EXPECT_EQ(copy->params().front().value, 123.5) << id;
    // ...and the clone is detached from the original.
    ASSERT_TRUE(copy->set_param(knob, 7.0));
    EXPECT_EQ(model->params().front().value, 123.5) << id;
  }
}

// The determinism contract: a story's votes depend only on (seed,
// story_id, platform submissions), never on which other stories were
// simulated first. Two platforms with identical submissions, one running
// both stories and one running only the second, must produce bit-identical
// votes for the shared story.
TEST(ModelDeterminism, StoryRunsAreRngOrderIndependent) {
  const graph::Digraph network = make_network(5, 2000);
  for (const std::string& id : registered_model_ids()) {
    const std::unique_ptr<Model> model = make_model(id);
    speed_up(*model);

    const auto submit_both = [](Platform& plat) {
      const auto s0 = plat.submit(0, 0.8, 0.0);
      const auto s1 = plat.submit(40, 0.6, 30.0);
      return std::pair{s0, s1};
    };

    auto plat_a = make_platform(network);
    const auto [a0, a1] = submit_both(*plat_a);
    const auto sim_a = model->make_simulator(*plat_a, stats::Rng(99));
    (void)sim_a->run_story(a0, {0.8, 0.5});
    (void)sim_a->run_story(a1, {0.6, 0.4});

    auto plat_b = make_platform(network);
    const auto [b0, b1] = submit_both(*plat_b);
    const auto sim_b = model->make_simulator(*plat_b, stats::Rng(99));
    (void)sim_b->run_story(b1, {0.6, 0.4});  // story 0 never simulated

    const platform::Story& a = plat_a->story(a1);
    const platform::Story& b = plat_b->story(b1);
    EXPECT_EQ(a.voters, b.voters) << id;
    EXPECT_EQ(a.times, b.times) << id;
    ASSERT_GE(b.vote_count(), 1u) << id;
  }
}

// Same seed, same story → same run, across separately-built simulators.
TEST(ModelDeterminism, SimulatorsAreReproducible) {
  const graph::Digraph network = make_network(6, 2000);
  for (const std::string& id : registered_model_ids()) {
    const std::unique_ptr<Model> model = make_model(id);
    speed_up(*model);
    std::vector<platform::Minutes> times[2];
    for (int rep = 0; rep < 2; ++rep) {
      auto plat = make_platform(network);
      const auto story = plat->submit(0, 0.7, 0.0);
      const auto sim = model->make_simulator(*plat, stats::Rng(123));
      (void)sim->run_story(story, {0.7, 0.6});
      times[rep] = plat->story(story).times;
    }
    EXPECT_EQ(times[0], times[1]) << id;
  }
}

}  // namespace
}  // namespace digg::dynamics
