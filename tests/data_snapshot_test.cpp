#include "src/data/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"

namespace digg::data {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("digg_snapshot_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path snap() const { return dir_ / "corpus.snap"; }

  fs::path dir_;
};

Corpus small_corpus(std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  SyntheticParams p;
  p.user_count = 1500;
  p.story_count = 40;
  p.vote_model.horizon = platform::kMinutesPerDay;
  p.vote_model.step = 2.0;
  return generate_corpus(p, rng).corpus;
}

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good());
  std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spew(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Same word-wise FNV-1a as the writer; needed to re-seal deliberately
// edited files so a test reaches the check *behind* the checksum.
std::uint64_t fnv1a(const char* data, std::size_t size) {
  std::uint64_t h = 14695981039346656037ull;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

void reseal(std::vector<char>& bytes) {
  const std::size_t payload_end = bytes.size() - sizeof(std::uint64_t);
  const std::uint64_t sum = fnv1a(bytes.data(), payload_end);
  std::memcpy(bytes.data() + payload_end, &sum, sizeof(sum));
}

void expect_load_error(const fs::path& path, const std::string& needle) {
  try {
    (void)load_snapshot(path);
    FAIL() << "expected load_snapshot to throw; wanted message containing '"
           << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
    // Every load error names the offending file.
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

void expect_same_story(const Story& a, const Story& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submitter, b.submitter);
  EXPECT_EQ(a.submitted_at, b.submitted_at);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.phase, b.phase);
  ASSERT_EQ(a.promoted(), b.promoted());
  if (a.promoted()) {
    EXPECT_EQ(*a.promoted_at, *b.promoted_at);
  }
  ASSERT_EQ(a.vote_count(), b.vote_count());
  // Deep equality including vote *order* (bitwise on times).
  EXPECT_TRUE(std::ranges::equal(a.voters(), b.voters()));
  EXPECT_TRUE(std::ranges::equal(a.times(), b.times()));
}

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  const Corpus original = small_corpus();
  save_snapshot(original, snap());
  const Corpus loaded = load_snapshot(snap());

  EXPECT_EQ(loaded.user_count(), original.user_count());
  EXPECT_EQ(loaded.network.edge_count(), original.network.edge_count());
  for (graph::NodeId u = 0; u < original.network.node_count(); ++u) {
    const auto fr_a = original.network.friends(u);
    const auto fr_b = loaded.network.friends(u);
    ASSERT_TRUE(std::equal(fr_a.begin(), fr_a.end(), fr_b.begin(), fr_b.end()));
    const auto fa_a = original.network.fans(u);
    const auto fa_b = loaded.network.fans(u);
    ASSERT_TRUE(std::equal(fa_a.begin(), fa_a.end(), fa_b.begin(), fa_b.end()));
  }

  ASSERT_EQ(loaded.front_page.size(), original.front_page.size());
  ASSERT_EQ(loaded.upcoming.size(), original.upcoming.size());
  for (std::size_t i = 0; i < original.front_page.size(); ++i)
    expect_same_story(original.front_page[i], loaded.front_page[i]);
  for (std::size_t i = 0; i < original.upcoming.size(); ++i)
    expect_same_story(original.upcoming[i], loaded.upcoming[i]);
  EXPECT_EQ(loaded.top_users, original.top_users);
  EXPECT_NO_THROW(validate(loaded));
}

TEST_F(SnapshotTest, RoundTripAcrossSeeds) {
  for (std::uint64_t seed : {2u, 3u, 4u}) {
    const Corpus original = small_corpus(seed);
    save_snapshot(original, snap());
    const Corpus loaded = load_snapshot(snap());
    ASSERT_EQ(loaded.story_count(), original.story_count());
    ASSERT_EQ(loaded.vote_store.total_votes(), original.vote_store.total_votes());
    for (std::size_t i = 0; i < original.front_page.size(); ++i)
      expect_same_story(original.front_page[i], loaded.front_page[i]);
    for (std::size_t i = 0; i < original.upcoming.size(); ++i)
      expect_same_story(original.upcoming[i], loaded.upcoming[i]);
  }
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW((void)load_snapshot(dir_ / "nope.snap"), std::runtime_error);
}

TEST_F(SnapshotTest, TruncatedHeaderThrows) {
  spew(snap(), {'D', 'I', 'G', 'G', 'S', 'N'});
  expect_load_error(snap(), "truncated file (smaller than header)");
}

TEST_F(SnapshotTest, BadMagicThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  bytes[0] = 'X';
  spew(snap(), bytes);
  expect_load_error(snap(), "bad magic");
}

TEST_F(SnapshotTest, FutureVersionThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  const std::uint32_t future = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  spew(snap(), bytes);
  expect_load_error(snap(), "unsupported version " + std::to_string(future));
}

TEST_F(SnapshotTest, CutOffSectionTableThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  bytes.resize(24);  // header survives, table does not
  spew(snap(), bytes);
  expect_load_error(snap(), "truncated file (section table cut off)");
}

TEST_F(SnapshotTest, SectionOverrunThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  // First table entry's size field (header 16 + type 4 + flags 4 + offset 8).
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + 16 + 16, &huge, sizeof(huge));
  spew(snap(), bytes);
  expect_load_error(snap(), "truncated file (section overruns)");
}

TEST_F(SnapshotTest, ChecksumMismatchThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  bytes[bytes.size() - sizeof(std::uint64_t) - 1] ^= 0x5a;  // payload byte
  spew(snap(), bytes);
  expect_load_error(snap(), "checksum mismatch");
}

TEST_F(SnapshotTest, UnknownSectionTypesAreIgnored) {
  // Forward compatibility: rebuild the file with a fifth, unknown section.
  save_snapshot(small_corpus(), snap());
  const auto bytes = slurp(snap());
  constexpr std::size_t kHeaderBytes = 16;
  constexpr std::size_t kEntryBytes = 24;
  const std::size_t old_table_end = kHeaderBytes + 4 * kEntryBytes;
  const std::size_t payload_end = bytes.size() - sizeof(std::uint64_t);

  std::vector<char> out(bytes.begin(), bytes.begin() + kHeaderBytes);
  const std::uint32_t count = 5;
  std::memcpy(out.data() + 12, &count, sizeof(count));
  // Copy the four real entries, shifting their offsets past the new entry.
  for (std::size_t i = 0; i < 4; ++i) {
    const char* entry = bytes.data() + kHeaderBytes + i * kEntryBytes;
    std::uint32_t type = 0, flags = 0;
    std::uint64_t offset = 0, size = 0;
    std::memcpy(&type, entry, 4);
    std::memcpy(&flags, entry + 4, 4);
    std::memcpy(&offset, entry + 8, 8);
    std::memcpy(&size, entry + 16, 8);
    offset += kEntryBytes;
    const std::size_t at = out.size();
    out.resize(at + kEntryBytes);
    std::memcpy(out.data() + at, &type, 4);
    std::memcpy(out.data() + at + 4, &flags, 4);
    std::memcpy(out.data() + at + 8, &offset, 8);
    std::memcpy(out.data() + at + 16, &size, 8);
  }
  // The unknown entry: type 99, empty body at the end of the payload.
  {
    const std::uint32_t type = 99, flags = 0;
    const std::uint64_t offset = payload_end + kEntryBytes, size = 0;
    const std::size_t at = out.size();
    out.resize(at + kEntryBytes);
    std::memcpy(out.data() + at, &type, 4);
    std::memcpy(out.data() + at + 4, &flags, 4);
    std::memcpy(out.data() + at + 8, &offset, 8);
    std::memcpy(out.data() + at + 16, &size, 8);
  }
  out.insert(out.end(), bytes.begin() + static_cast<std::ptrdiff_t>(old_table_end),
             bytes.begin() + static_cast<std::ptrdiff_t>(payload_end));
  out.resize(out.size() + sizeof(std::uint64_t));
  reseal(out);
  spew(snap(), out);

  const Corpus loaded = load_snapshot(snap());
  EXPECT_EQ(loaded.story_count(), small_corpus().story_count());
}

// The acceptance gate for the whole storage layer: one experiment run
// through a CSV-loaded corpus and a snapshot-loaded corpus must agree on
// every value.
TEST_F(SnapshotTest, ExperimentIdenticalAcrossCsvAndSnapshot) {
  const Corpus original = small_corpus(7);
  save_corpus(original, dir_ / "csv");
  save_snapshot(original, snap());
  const Corpus from_csv = load_corpus(dir_ / "csv");
  const Corpus from_snap = load_snapshot(snap());

  const core::Fig3aResult a = core::fig3a_influence(from_csv);
  const core::Fig3aResult b = core::fig3a_influence(from_snap);
  EXPECT_EQ(a.at_submission, b.at_submission);
  EXPECT_EQ(a.after_10, b.after_10);
  EXPECT_EQ(a.after_20, b.after_20);
  EXPECT_EQ(a.fraction_submitters_under_10_fans,
            b.fraction_submitters_under_10_fans);
  EXPECT_EQ(a.fraction_visible_to_200_after_10,
            b.fraction_visible_to_200_after_10);

  // Feature extraction (the §5 pipeline input) must agree field by field.
  const auto fa = core::extract_features(from_csv.front_page, from_csv.network);
  const auto fb =
      core::extract_features(from_snap.front_page, from_snap.network);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].story, fb[i].story);
    EXPECT_EQ(fa[i].submitter, fb[i].submitter);
    EXPECT_EQ(fa[i].v6, fb[i].v6);
    EXPECT_EQ(fa[i].v10, fb[i].v10);
    EXPECT_EQ(fa[i].v20, fb[i].v20);
    EXPECT_EQ(fa[i].fans1, fb[i].fans1);
    EXPECT_EQ(fa[i].influence10, fb[i].influence10);
    EXPECT_EQ(fa[i].final_votes, fb[i].final_votes);
    EXPECT_EQ(fa[i].interesting, fb[i].interesting);
  }

  // Vote-time-dependent values too: CSV stores round-trip-exact doubles.
  for (std::size_t i = 0; i < from_csv.front_page.size(); ++i) {
    const auto ta = core::vote_timeseries(from_csv.front_page[i]);
    const auto tb = core::vote_timeseries(from_snap.front_page[i]);
    EXPECT_EQ(ta.times(), tb.times());
    EXPECT_EQ(ta.values(), tb.values());
  }
}

}  // namespace
}  // namespace digg::data
