#include "src/data/snapshot.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"
#include "src/dynamics/model.h"

namespace digg::data {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("digg_snapshot_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path snap() const { return dir_ / "corpus.snap"; }

  fs::path dir_;
};

Corpus small_corpus(std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  SyntheticParams p;
  p.user_count = 1500;
  p.story_count = 40;
  p.vote_model.horizon = platform::kMinutesPerDay;
  p.vote_model.step = 2.0;
  return generate_corpus(p, rng).corpus;
}

std::vector<char> slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in.good());
  std::vector<char> bytes(static_cast<std::size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void spew(const fs::path& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// Same word-wise FNV-1a as the writer; needed to re-seal deliberately
// edited files so a test reaches the check *behind* the checksum.
std::uint64_t fnv1a(const char* data, std::size_t size,
                    std::uint64_t seed = 14695981039346656037ull) {
  std::uint64_t h = seed;
  std::size_t i = 0;
  for (; i + 8 <= size; i += 8) {
    std::uint64_t w;
    std::memcpy(&w, data + i, 8);
    h = (h ^ w) * 1099511628211ull;
  }
  if (i < size) {
    std::uint64_t w = 0;
    std::memcpy(&w, data + i, size - i);
    h = (h ^ w) * 1099511628211ull;
  }
  return h;
}

// Recomputes a v2 file's trailing header+table checksum (fnv over the 24-byte
// header chained into the table) after a deliberate edit.
void reseal_v2(std::vector<char>& bytes) {
  std::uint32_t count;
  std::uint64_t table_offset;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  std::memcpy(&table_offset, bytes.data() + 16, sizeof(table_offset));
  const std::size_t table_bytes = std::size_t{count} * 32;
  std::uint64_t sum = fnv1a(bytes.data(), 24);
  sum = fnv1a(bytes.data() + table_offset, table_bytes, sum);
  std::memcpy(bytes.data() + table_offset + table_bytes, &sum, sizeof(sum));
}

template <typename Loader>
void expect_error_with(Loader&& loader, const fs::path& path,
                       const std::string& needle) {
  try {
    (void)loader(path);
    FAIL() << "expected the loader to throw; wanted message containing '"
           << needle << "'";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "actual message: " << e.what();
    // Every load error names the offending file.
    EXPECT_NE(std::string(e.what()).find(path.filename().string()),
              std::string::npos)
        << "actual message: " << e.what();
  }
}

void expect_load_error(const fs::path& path, const std::string& needle) {
  expect_error_with([](const fs::path& p) { return load_snapshot(p); }, path,
                    needle);
}

void expect_mmap_load_error(const fs::path& path, const std::string& needle) {
  expect_error_with([](const fs::path& p) { return load_snapshot_mmap(p); },
                    path, needle);
}

// One decoded v2 section-table entry plus its own position in the file, so
// tests can surgically edit entries and bodies.
struct RawEntry {
  std::uint32_t type = 0;
  std::uint64_t offset = 0;
  std::uint64_t size = 0;
  std::size_t entry_pos = 0;  // byte position of this entry in the table
};

std::vector<RawEntry> read_table(const std::vector<char>& bytes) {
  std::uint32_t count;
  std::uint64_t table_offset;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  std::memcpy(&table_offset, bytes.data() + 16, sizeof(table_offset));
  std::vector<RawEntry> table(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    RawEntry& e = table[i];
    e.entry_pos = static_cast<std::size_t>(table_offset) + i * 32;
    std::memcpy(&e.type, bytes.data() + e.entry_pos, 4);
    std::memcpy(&e.offset, bytes.data() + e.entry_pos + 8, 8);
    std::memcpy(&e.size, bytes.data() + e.entry_pos + 16, 8);
  }
  return table;
}

void expect_same_story(const Story& a, const Story& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submitter, b.submitter);
  EXPECT_EQ(a.submitted_at, b.submitted_at);
  EXPECT_EQ(a.quality, b.quality);
  EXPECT_EQ(a.phase, b.phase);
  ASSERT_EQ(a.promoted(), b.promoted());
  if (a.promoted()) {
    EXPECT_EQ(*a.promoted_at, *b.promoted_at);
  }
  ASSERT_EQ(a.vote_count(), b.vote_count());
  // Deep equality including vote *order* (bitwise on times).
  EXPECT_TRUE(std::ranges::equal(a.voters(), b.voters()));
  EXPECT_TRUE(std::ranges::equal(a.times(), b.times()));
}

TEST_F(SnapshotTest, RoundTripPreservesEverything) {
  const Corpus original = small_corpus();
  save_snapshot(original, snap());
  const Corpus loaded = load_snapshot(snap());

  EXPECT_EQ(loaded.user_count(), original.user_count());
  EXPECT_EQ(loaded.network.edge_count(), original.network.edge_count());
  for (graph::NodeId u = 0; u < original.network.node_count(); ++u) {
    const auto fr_a = original.network.friends(u);
    const auto fr_b = loaded.network.friends(u);
    ASSERT_TRUE(std::equal(fr_a.begin(), fr_a.end(), fr_b.begin(), fr_b.end()));
    const auto fa_a = original.network.fans(u);
    const auto fa_b = loaded.network.fans(u);
    ASSERT_TRUE(std::equal(fa_a.begin(), fa_a.end(), fa_b.begin(), fa_b.end()));
  }

  ASSERT_EQ(loaded.front_page.size(), original.front_page.size());
  ASSERT_EQ(loaded.upcoming.size(), original.upcoming.size());
  for (std::size_t i = 0; i < original.front_page.size(); ++i)
    expect_same_story(original.front_page[i], loaded.front_page[i]);
  for (std::size_t i = 0; i < original.upcoming.size(); ++i)
    expect_same_story(original.upcoming[i], loaded.upcoming[i]);
  EXPECT_EQ(loaded.top_users, original.top_users);
  EXPECT_NO_THROW(validate(loaded));
}

TEST_F(SnapshotTest, RoundTripAcrossSeeds) {
  for (std::uint64_t seed : {2u, 3u, 4u}) {
    const Corpus original = small_corpus(seed);
    save_snapshot(original, snap());
    const Corpus loaded = load_snapshot(snap());
    ASSERT_EQ(loaded.story_count(), original.story_count());
    ASSERT_EQ(loaded.vote_store.total_votes(), original.vote_store.total_votes());
    for (std::size_t i = 0; i < original.front_page.size(); ++i)
      expect_same_story(original.front_page[i], loaded.front_page[i]);
    for (std::size_t i = 0; i < original.upcoming.size(); ++i)
      expect_same_story(original.upcoming[i], loaded.upcoming[i]);
  }
}

TEST_F(SnapshotTest, MissingFileThrows) {
  EXPECT_THROW((void)load_snapshot(dir_ / "nope.snap"), std::runtime_error);
}

TEST_F(SnapshotTest, TruncatedHeaderThrows) {
  spew(snap(), {'D', 'I', 'G', 'G', 'S', 'N'});
  expect_load_error(snap(), "truncated file (smaller than header)");
}

TEST_F(SnapshotTest, BadMagicThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  bytes[0] = 'X';
  spew(snap(), bytes);
  expect_load_error(snap(), "bad magic");
}

TEST_F(SnapshotTest, FutureVersionThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  const std::uint32_t future = kSnapshotVersion + 1;
  std::memcpy(bytes.data() + 8, &future, sizeof(future));
  spew(snap(), bytes);
  expect_load_error(snap(), "unsupported version " + std::to_string(future));
}

TEST_F(SnapshotTest, CutOffSectionTableThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  // Drop the trailing seal: the end-of-file table no longer adds up.
  bytes.resize(bytes.size() - sizeof(std::uint64_t));
  spew(snap(), bytes);
  expect_load_error(snap(), "truncated file (section table cut off)");
}

TEST_F(SnapshotTest, SectionOverrunThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  std::uint64_t table_offset;
  std::memcpy(&table_offset, bytes.data() + 16, sizeof(table_offset));
  // First table entry's size field (type 4 + flags 4 + offset 8 in).
  const std::uint64_t huge = ~0ull;
  std::memcpy(bytes.data() + table_offset + 16, &huge, sizeof(huge));
  spew(snap(), bytes);
  expect_load_error(snap(), "truncated file (section overruns)");
}

TEST_F(SnapshotTest, ByteReaderRejectsSizesNearMax) {
  // Regression: the in-bounds check must compare a requested length against
  // the *remaining* bytes. The old `pos + bytes > size` form wraps for
  // hostile lengths near SIZE_MAX and would admit a wild read.
  const char buf[16] = {};
  const std::size_t huge = SIZE_MAX - 4;
  snapfmt::ByteReader r(buf, sizeof(buf));
  (void)r.pod<std::uint64_t>();  // pos = 8, so pos + huge wraps small
  char sink[8];
  EXPECT_THROW(r.read_into(sink, huge), std::runtime_error);
  EXPECT_THROW((void)r.borrow(huge), std::runtime_error);
  // The reader survives the rejected reads: the remaining 8 bytes are
  // still readable.
  EXPECT_EQ(r.pod<std::uint64_t>(), 0u);
}

TEST_F(SnapshotTest, ChecksumMismatchThrows) {
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  bytes[bytes.size() - sizeof(std::uint64_t) - 1] ^= 0x5a;  // payload byte
  spew(snap(), bytes);
  expect_load_error(snap(), "checksum mismatch");
}

TEST_F(SnapshotTest, UnknownSectionTypesAreIgnored) {
  // Forward compatibility: append an unknown entry to the section table.
  // The v2 table sits at the end of the file, so no payload offset moves —
  // bump the count, splice in a 32-byte entry, and re-seal.
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  std::uint32_t count;
  std::uint64_t table_offset;
  std::memcpy(&count, bytes.data() + 12, sizeof(count));
  std::memcpy(&table_offset, bytes.data() + 16, sizeof(table_offset));
  const std::uint32_t new_count = count + 1;
  std::memcpy(bytes.data() + 12, &new_count, sizeof(new_count));

  // The unknown entry: type 99, empty body parked at the table boundary,
  // checksum of zero bytes (the fnv basis).
  char entry[32] = {};
  const std::uint32_t type = 99;
  const std::uint64_t checksum = fnv1a(entry, 0);
  std::memcpy(entry, &type, sizeof(type));
  std::memcpy(entry + 8, &table_offset, sizeof(table_offset));
  std::memcpy(entry + 24, &checksum, sizeof(checksum));
  bytes.insert(bytes.end() - sizeof(std::uint64_t), entry, entry + 32);
  reseal_v2(bytes);
  spew(snap(), bytes);

  const Corpus loaded = load_snapshot(snap());
  EXPECT_EQ(loaded.story_count(), small_corpus().story_count());
  // The zero-copy reader must shrug the stranger off too.
  const Corpus mapped = load_snapshot_mmap(snap());
  EXPECT_EQ(mapped.story_count(), loaded.story_count());
}

TEST_F(SnapshotTest, MmapCorruptVoteChunkThrows) {
  // A flipped byte inside a vote-chunk body leaves the header/table seal
  // intact; the per-section checksum must catch it — lazily on first view
  // for the mapped reader, eagerly for load_snapshot.
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  const auto table = read_table(bytes);
  const auto chunk = std::ranges::find_if(table, [](const RawEntry& e) {
    return e.type == snapfmt::kVotesUsers && e.size > 0;
  });
  ASSERT_NE(chunk, table.end());
  bytes[static_cast<std::size_t>(chunk->offset + chunk->size / 2)] ^= 0x5a;
  spew(snap(), bytes);
  expect_mmap_load_error(snap(), "checksum mismatch");
  expect_load_error(snap(), "checksum mismatch");
}

TEST_F(SnapshotTest, MmapTruncatedVoteChunkThrows) {
  // Shrink one time-column chunk and re-seal both its section checksum and
  // the table, so the file is checksum-clean but structurally short: the
  // user/time columns of the chunk no longer describe the same vote count.
  save_snapshot(small_corpus(), snap());
  auto bytes = slurp(snap());
  const auto table = read_table(bytes);
  const auto chunk = std::ranges::find_if(table, [](const RawEntry& e) {
    return e.type == snapfmt::kVotesTimes && e.size >= 16;
  });
  ASSERT_NE(chunk, table.end());
  const std::uint64_t short_size = chunk->size - 8;
  const std::uint64_t short_sum =
      fnv1a(bytes.data() + chunk->offset, static_cast<std::size_t>(short_size));
  std::memcpy(bytes.data() + chunk->entry_pos + 16, &short_size, 8);
  std::memcpy(bytes.data() + chunk->entry_pos + 24, &short_sum, 8);
  reseal_v2(bytes);
  spew(snap(), bytes);
  expect_mmap_load_error(snap(), "vote chunk size mismatch");
}

TEST_F(SnapshotTest, MmapLoadMatchesEagerLoad) {
  const Corpus original = small_corpus(42);
  save_snapshot(original, snap());
  const Corpus eager = load_snapshot(snap());
  const Corpus mapped = load_snapshot_mmap(snap());

  EXPECT_EQ(mapped.user_count(), eager.user_count());
  EXPECT_EQ(mapped.network.edge_count(), eager.network.edge_count());
  EXPECT_EQ(mapped.top_users, eager.top_users);
  ASSERT_EQ(mapped.front_page.size(), eager.front_page.size());
  ASSERT_EQ(mapped.upcoming.size(), eager.upcoming.size());
  for (std::size_t i = 0; i < eager.front_page.size(); ++i)
    expect_same_story(eager.front_page[i], mapped.front_page[i]);
  for (std::size_t i = 0; i < eager.upcoming.size(); ++i)
    expect_same_story(eager.upcoming[i], mapped.upcoming[i]);

  // Figures bit-identical across the two load paths (seed 42).
  const core::Fig3aResult a = core::fig3a_influence(eager);
  const core::Fig3aResult b = core::fig3a_influence(mapped);
  EXPECT_EQ(a.at_submission, b.at_submission);
  EXPECT_EQ(a.after_10, b.after_10);
  EXPECT_EQ(a.after_20, b.after_20);
  const auto fa = core::extract_features(eager.front_page, eager.network);
  const auto fb = core::extract_features(mapped.front_page, mapped.network);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].v10, fb[i].v10);
    EXPECT_EQ(fa[i].influence10, fb[i].influence10);
    EXPECT_EQ(fa[i].final_votes, fb[i].final_votes);
    EXPECT_EQ(fa[i].interesting, fb[i].interesting);
  }
}

TEST_F(SnapshotTest, MmapSurvivesCopyAndSourceRelease) {
  // The mapping must stay alive through Corpus copies even after the
  // original loaded corpus is gone (shared backing).
  save_snapshot(small_corpus(), snap());
  Corpus copy;
  {
    const Corpus mapped = load_snapshot_mmap(snap());
    copy = mapped;
  }
  fs::remove(snap());  // mapping survives unlinking on POSIX
  EXPECT_NO_THROW(validate(copy));
  EXPECT_GT(copy.vote_store.total_votes(), 0u);
}

TEST_F(SnapshotTest, MultiChunkRoundTrip) {
  // A tiny chunk target forces many VOTES_USERS/VOTES_TIMES sections; both
  // loaders must reassemble them into the identical corpus.
  const Corpus original = small_corpus(5);
  save_snapshot(original, snap(), kSnapshotVersion,
                /*chunk_target_bytes=*/512);
  const auto table = read_table(slurp(snap()));
  const auto chunks = std::ranges::count_if(table, [](const RawEntry& e) {
    return e.type == snapfmt::kVotesUsers;
  });
  EXPECT_GT(chunks, 4) << "chunk target did not split the vote columns";

  for (const Corpus& loaded : {load_snapshot(snap()), load_snapshot_mmap(snap())}) {
    ASSERT_EQ(loaded.story_count(), original.story_count());
    ASSERT_EQ(loaded.vote_store.total_votes(),
              original.vote_store.total_votes());
    for (std::size_t i = 0; i < original.front_page.size(); ++i)
      expect_same_story(original.front_page[i], loaded.front_page[i]);
    for (std::size_t i = 0; i < original.upcoming.size(); ++i)
      expect_same_story(original.upcoming[i], loaded.upcoming[i]);
  }
}

TEST_F(SnapshotTest, V1FilesLoadThroughBothEntryPoints) {
  // save_snapshot can still emit v1; load_snapshot reads it directly and
  // load_snapshot_mmap routes it through the eager loader.
  const Corpus original = small_corpus(3);
  save_snapshot(original, snap(), /*version=*/1);
  const auto bytes = slurp(snap());
  std::uint32_t version = 0;
  std::memcpy(&version, bytes.data() + 8, sizeof(version));
  ASSERT_EQ(version, 1u);

  for (const Corpus& loaded : {load_snapshot(snap()), load_snapshot_mmap(snap())}) {
    ASSERT_EQ(loaded.story_count(), original.story_count());
    for (std::size_t i = 0; i < original.front_page.size(); ++i)
      expect_same_story(original.front_page[i], loaded.front_page[i]);
    for (std::size_t i = 0; i < original.upcoming.size(); ++i)
      expect_same_story(original.upcoming[i], loaded.upcoming[i]);
    EXPECT_EQ(loaded.top_users, original.top_users);
  }
}

// The acceptance gate for the whole storage layer: one experiment run
// through a CSV-loaded corpus and a snapshot-loaded corpus must agree on
// every value.
TEST_F(SnapshotTest, ExperimentIdenticalAcrossCsvAndSnapshot) {
  const Corpus original = small_corpus(7);
  save_corpus(original, dir_ / "csv");
  save_snapshot(original, snap());
  const Corpus from_csv = load_corpus(dir_ / "csv");
  const Corpus from_snap = load_snapshot(snap());

  const core::Fig3aResult a = core::fig3a_influence(from_csv);
  const core::Fig3aResult b = core::fig3a_influence(from_snap);
  EXPECT_EQ(a.at_submission, b.at_submission);
  EXPECT_EQ(a.after_10, b.after_10);
  EXPECT_EQ(a.after_20, b.after_20);
  EXPECT_EQ(a.fraction_submitters_under_10_fans,
            b.fraction_submitters_under_10_fans);
  EXPECT_EQ(a.fraction_visible_to_200_after_10,
            b.fraction_visible_to_200_after_10);

  // Feature extraction (the §5 pipeline input) must agree field by field.
  const auto fa = core::extract_features(from_csv.front_page, from_csv.network);
  const auto fb =
      core::extract_features(from_snap.front_page, from_snap.network);
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i].story, fb[i].story);
    EXPECT_EQ(fa[i].submitter, fb[i].submitter);
    EXPECT_EQ(fa[i].v6, fb[i].v6);
    EXPECT_EQ(fa[i].v10, fb[i].v10);
    EXPECT_EQ(fa[i].v20, fb[i].v20);
    EXPECT_EQ(fa[i].fans1, fb[i].fans1);
    EXPECT_EQ(fa[i].influence10, fb[i].influence10);
    EXPECT_EQ(fa[i].final_votes, fb[i].final_votes);
    EXPECT_EQ(fa[i].interesting, fb[i].interesting);
  }

  // Vote-time-dependent values too: CSV stores round-trip-exact doubles.
  for (std::size_t i = 0; i < from_csv.front_page.size(); ++i) {
    const auto ta = core::vote_timeseries(from_csv.front_page[i]);
    const auto tb = core::vote_timeseries(from_snap.front_page[i]);
    EXPECT_EQ(ta.times(), tb.times());
    EXPECT_EQ(ta.values(), tb.values());
  }
}

// --- MODELINFO section ---------------------------------------------------

TEST_F(SnapshotTest, ModelIdRoundTripsThroughBothLoaders) {
  Corpus original = small_corpus(4);
  original.model_id = dynamics::kStochasticModelId;
  save_snapshot(original, snap());
  EXPECT_EQ(load_snapshot(snap()).model_id, dynamics::kStochasticModelId);
  EXPECT_EQ(load_snapshot_mmap(snap()).model_id,
            dynamics::kStochasticModelId);
}

TEST_F(SnapshotTest, UnknownModelIdIsALoadError) {
  // The id is validated against the registry at load time: analysing a
  // corpus under the wrong generative assumptions must be loud, not a
  // silent fallback.
  Corpus original = small_corpus(4);
  original.model_id = "model-from-the-future";
  save_snapshot(original, snap());
  const auto expect_rejected = [&](bool mmap) {
    try {
      (void)(mmap ? load_snapshot_mmap(snap()) : load_snapshot(snap()));
      FAIL() << "expected unknown model id to be rejected";
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find("model-from-the-future"),
                std::string::npos)
          << err.what();
    }
  };
  expect_rejected(false);
  expect_rejected(true);
}

TEST_F(SnapshotTest, FilesWithoutModelInfoDefaultToLegacy) {
  // v1 files predate the section entirely; v2 files written by older code
  // simply lack it. Both mean "the original two-mechanism model".
  const Corpus original = small_corpus(4);
  save_snapshot(original, snap(), /*version=*/1);
  EXPECT_EQ(load_snapshot(snap()).model_id, dynamics::kLegacyModelId);
  EXPECT_EQ(load_snapshot_mmap(snap()).model_id, dynamics::kLegacyModelId);
}

TEST_F(SnapshotTest, GeneratedSnapshotsRecordTheGeneratingModel) {
  SyntheticParams p;
  p.user_count = 1500;
  p.story_count = 40;
  p.model_id = dynamics::kStochasticModelId;
  p.stochastic.step = 4.0;
  p.stochastic.horizon = platform::kMinutesPerDay;
  stats::Rng rng(9);
  (void)generate_corpus_to_snapshot(p, rng, snap());
  EXPECT_EQ(load_snapshot_mmap(snap()).model_id,
            dynamics::kStochasticModelId);
}

}  // namespace
}  // namespace digg::data
