#include "src/data/io.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "src/data/synthetic.h"

namespace digg::data {
namespace {

namespace fs = std::filesystem;

void expect_same_votes(const Story& a, const Story& b) {
  ASSERT_EQ(a.vote_count(), b.vote_count());
  EXPECT_TRUE(std::ranges::equal(a.voters(), b.voters()));
  EXPECT_TRUE(std::ranges::equal(a.times(), b.times()));
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("digg_io_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

Corpus small_corpus(std::uint64_t seed = 1) {
  stats::Rng rng(seed);
  SyntheticParams p;
  p.user_count = 1500;
  p.story_count = 40;
  p.vote_model.horizon = platform::kMinutesPerDay;
  p.vote_model.step = 2.0;
  return generate_corpus(p, rng).corpus;
}

TEST_F(IoTest, RoundTripPreservesEverything) {
  const Corpus original = small_corpus();
  save_corpus(original, dir_);
  const Corpus loaded = load_corpus(dir_);

  EXPECT_EQ(loaded.user_count(), original.user_count());
  EXPECT_EQ(loaded.network.edge_count(), original.network.edge_count());
  ASSERT_EQ(loaded.front_page.size(), original.front_page.size());
  ASSERT_EQ(loaded.upcoming.size(), original.upcoming.size());
  EXPECT_EQ(loaded.top_users, original.top_users);

  for (std::size_t i = 0; i < original.front_page.size(); ++i) {
    const Story& a = original.front_page[i];
    const Story& b = loaded.front_page[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.submitter, b.submitter);
    expect_same_votes(a, b);
    EXPECT_DOUBLE_EQ(*a.promoted_at, *b.promoted_at);
    EXPECT_NEAR(a.quality, b.quality, 1e-5);
  }
  for (std::size_t i = 0; i < original.upcoming.size(); ++i) {
    expect_same_votes(original.upcoming[i], loaded.upcoming[i]);
    EXPECT_FALSE(loaded.upcoming[i].promoted());
  }

  // Network structure preserved exactly.
  for (graph::NodeId u = 0; u < original.network.node_count(); ++u) {
    const auto fa = original.network.friends(u);
    const auto fb = loaded.network.friends(u);
    ASSERT_EQ(fa.size(), fb.size());
    EXPECT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin()));
  }
}

TEST_F(IoTest, CreatesExpectedFiles) {
  save_corpus(small_corpus(), dir_);
  EXPECT_TRUE(fs::exists(dir_ / "network.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "stories.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "votes.csv"));
  EXPECT_TRUE(fs::exists(dir_ / "top_users.csv"));
}

TEST_F(IoTest, MissingDirectoryThrows) {
  EXPECT_THROW(load_corpus(dir_ / "nonexistent"), std::runtime_error);
}

TEST_F(IoTest, BadHeaderThrows) {
  save_corpus(small_corpus(), dir_);
  std::ofstream(dir_ / "network.csv") << "bogus,header\n0,1\n";
  EXPECT_THROW(load_corpus(dir_), std::runtime_error);
}

TEST_F(IoTest, MalformedRowThrows) {
  save_corpus(small_corpus(), dir_);
  std::ofstream(dir_ / "votes.csv") << "story_id,user,time\nnot_a_number,1,2\n";
  EXPECT_THROW(load_corpus(dir_), std::runtime_error);
}

TEST_F(IoTest, VoteForUnknownStoryThrows) {
  save_corpus(small_corpus(), dir_);
  std::ofstream out(dir_ / "votes.csv", std::ios::app);
  out << "999999,1,2\n";
  out.close();
  EXPECT_THROW(load_corpus(dir_), std::runtime_error);
}

TEST_F(IoTest, SectionMismatchThrows) {
  save_corpus(small_corpus(), dir_);
  // front_page story without promoted_at.
  std::ofstream(dir_ / "stories.csv")
      << "id,section,submitter,submitted_at,promoted_at,quality\n"
      << "0,front_page,0,0,,0.5\n";
  EXPECT_THROW(load_corpus(dir_), std::runtime_error);
}

TEST_F(IoTest, LoadedCorpusValidates) {
  save_corpus(small_corpus(2), dir_);
  // load_corpus runs validate() internally; reaching here means it passed.
  EXPECT_NO_THROW(load_corpus(dir_));
}

}  // namespace
}  // namespace digg::data
