#include "src/stream/engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/snapshot_format.h"
#include "src/data/synthetic.h"
#include "src/runtime/thread_pool.h"
#include "src/stream/checkpoint.h"
#include "src/stream/source.h"

namespace digg::stream {
namespace {

namespace snapfmt = data::snapfmt;

class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned threads) {
    runtime::set_default_threads(threads);
  }
  ~ThreadGuard() { runtime::set_default_threads(0); }
};

// The runtime_test corpus: large enough that the front page carries both
// label classes, small enough to generate in well under a second.
const data::SyntheticCorpus& small_corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.user_count = 40000;
    params.story_count = 400;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

const EventStream& small_stream() {
  static const EventStream s = build_event_stream(small_corpus().corpus);
  return s;
}

void expect_same_outcome(const StoryOutcome& a, const StoryOutcome& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submitter, b.submitter);
  EXPECT_EQ(a.cascade, b.cascade);
  EXPECT_EQ(a.influence, b.influence);
  EXPECT_EQ(a.fans1, b.fans1);
  EXPECT_EQ(a.final_votes, b.final_votes);
  EXPECT_EQ(a.interesting, b.interesting);
  EXPECT_EQ(a.predicted_interesting, b.predicted_interesting);
  EXPECT_EQ(a.bayes_interesting, b.bayes_interesting);
  EXPECT_EQ(a.bayes_expected_final, b.bayes_expected_final);
  EXPECT_EQ(a.promoted_time, b.promoted_time);
}

void expect_same_result(const StreamResult& a, const StreamResult& b) {
  EXPECT_EQ(a.events_applied, b.events_applied);
  ASSERT_EQ(a.stories.size(), b.stories.size());
  for (std::size_t i = 0; i < a.stories.size(); ++i) {
    SCOPED_TRACE("story slot " + std::to_string(i));
    expect_same_outcome(a.stories[i], b.stories[i]);
  }
}

class StreamTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("digg_stream_test_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  [[nodiscard]] std::filesystem::path file(const std::string& name) const {
    return dir_ / name;
  }

  std::filesystem::path dir_;
};

std::vector<char> slurp(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void spew(const std::filesystem::path& p, const std::vector<char>& bytes) {
  std::ofstream out(p, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------ stream construction ----

TEST(EventStreamTest, StoryTableAndTotalMatchCorpus) {
  const EventStream& s = small_stream();
  EXPECT_EQ(s.stories.size(), small_corpus().corpus.story_count());
  std::uint64_t votes = 0;
  for (const platform::StoryView& sv : s.stories) {
    votes += sv.vote_count();
    // The merge order leans on per-story time columns being sorted.
    const auto times = sv.times();
    for (std::size_t k = 1; k < times.size(); ++k)
      EXPECT_GE(times[k], times[k - 1]);
  }
  ASSERT_GT(votes, 0u);
  EXPECT_EQ(s.total_events(), votes);
}

TEST(EventStreamTest, EngineRejectsTamperedStreams) {
  const auto& corpus = small_corpus().corpus;
  {
    // Cached event total disagreeing with the vote columns.
    EventStream broken = build_event_stream(corpus);
    broken.total -= 1;
    EXPECT_THROW(StreamEngine(broken, corpus.network), std::invalid_argument);
  }
  {
    // A story whose time column is not sorted: no merge order exists.
    platform::Story story;
    story.id = 0;
    story.submitter = 0;
    story.voters = {0, 1};
    story.times = {5.0, 1.0};
    const std::vector<platform::StoryView> stories = {story};
    const EventStream broken = build_event_stream(stories);
    EXPECT_THROW(StreamEngine(broken, corpus.network), std::invalid_argument);
  }
  {
    // A submitter outside the graph.
    platform::Story story;
    story.id = 0;
    story.submitter =
        static_cast<platform::UserId>(corpus.network.node_count());
    story.voters = {story.submitter};
    story.times = {0.0};
    const std::vector<platform::StoryView> stories = {story};
    const EventStream broken = build_event_stream(stories);
    EXPECT_THROW(StreamEngine(broken, corpus.network), std::invalid_argument);
  }
}

TEST(EngineParamsTest, RejectsBadCheckpointLists) {
  const auto& corpus = small_corpus().corpus;
  const EventStream& s = small_stream();
  StreamParams bad;
  bad.cascade_checkpoints = {10, 6};
  EXPECT_THROW(StreamEngine(s, corpus.network, bad), std::invalid_argument);
  bad = {};
  bad.influence_checkpoints = {0, 11};
  EXPECT_THROW(StreamEngine(s, corpus.network, bad), std::invalid_argument);
}

// ------------------------------------------- batch/stream bit-identity ---

TEST(EquivalenceTest, FeaturesMatchBatchExtractionExactly) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_all();
  const StreamResult result = engine.result();
  ASSERT_EQ(result.stories.size(), corpus.story_count());

  const std::vector<core::StoryFeatures> rows = to_story_features(result);
  const std::vector<core::StoryFeatures> batch_fp =
      core::extract_features(corpus.front_page, corpus.network);
  const std::vector<core::StoryFeatures> batch_up =
      core::extract_features(corpus.upcoming, corpus.network);
  ASSERT_EQ(rows.size(), batch_fp.size() + batch_up.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    SCOPED_TRACE("story slot " + std::to_string(i));
    const core::StoryFeatures& b =
        i < batch_fp.size() ? batch_fp[i] : batch_up[i - batch_fp.size()];
    EXPECT_EQ(rows[i].story, b.story);
    EXPECT_EQ(rows[i].submitter, b.submitter);
    EXPECT_EQ(rows[i].v6, b.v6);
    EXPECT_EQ(rows[i].v10, b.v10);
    EXPECT_EQ(rows[i].v20, b.v20);
    EXPECT_EQ(rows[i].fans1, b.fans1);
    EXPECT_EQ(rows[i].influence10, b.influence10);
    EXPECT_EQ(rows[i].final_votes, b.final_votes);
    EXPECT_EQ(rows[i].interesting, b.interesting);
  }
}

TEST(EquivalenceTest, Fig3aInfluenceMatchesBatch) {
  const auto& corpus = small_corpus().corpus;
  const core::Fig3aResult batch = core::fig3a_influence(corpus);
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_all();
  const StreamResult result = engine.result();
  // Stream slots [0, front_page.size()) are the front-page stories and the
  // default influence checkpoints {1, 11, 21} are exactly fig3a's.
  ASSERT_EQ(batch.at_submission.size(), corpus.front_page.size());
  for (std::size_t i = 0; i < corpus.front_page.size(); ++i) {
    SCOPED_TRACE("front-page story " + std::to_string(i));
    ASSERT_EQ(result.stories[i].influence.size(), 3u);
    EXPECT_EQ(result.stories[i].influence[0], batch.at_submission[i]);
    EXPECT_EQ(result.stories[i].influence[1], batch.after_10[i]);
    EXPECT_EQ(result.stories[i].influence[2], batch.after_20[i]);
  }
}

TEST(EquivalenceTest, Fig4MatchesBatchThroughSharedGrouping) {
  const auto& corpus = small_corpus().corpus;
  const core::Fig4Result batch = core::fig4_innetwork_vs_final(corpus);
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_all();
  std::vector<core::StoryFeatures> rows = to_story_features(engine.result());
  rows.resize(corpus.front_page.size());  // fig4 is a front-page artifact
  const core::Fig4Result ours = core::fig4_from_features(rows);
  EXPECT_EQ(ours.spearman_v10_final, batch.spearman_v10_final);
  ASSERT_EQ(ours.after_10.size(), batch.after_10.size());
  for (std::size_t g = 0; g < ours.after_10.size(); ++g) {
    EXPECT_EQ(ours.after_10[g].in_network_votes,
              batch.after_10[g].in_network_votes);
    EXPECT_EQ(ours.after_10[g].final_votes.n, batch.after_10[g].final_votes.n);
    EXPECT_EQ(ours.after_10[g].final_votes.median,
              batch.after_10[g].final_votes.median);
  }
}

// --------------------------------------------------------- determinism ---

TEST(DeterminismTest, BitIdenticalAcrossThreadCounts) {
  const auto& corpus = small_corpus().corpus;
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    StreamEngine engine(small_stream(), corpus.network);
    engine.run_all();
    return engine.result();
  };
  const StreamResult t1 = run(1);
  const StreamResult t2 = run(2);
  const StreamResult t8 = run(8);
  expect_same_result(t1, t2);
  expect_same_result(t1, t8);
}

TEST(DeterminismTest, TightVisibilityBudgetChangesNothing) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine roomy(small_stream(), corpus.network);
  roomy.run_all();
  // A one-byte budget forces every shard down to a single resident set, so
  // interleaved stories evict each other constantly and every value flows
  // through the rebuild-by-replay path.
  StreamParams tight;
  tight.vis_budget_bytes = 1;
  StreamEngine squeezed(small_stream(), corpus.network, tight);
  squeezed.run_all();
  expect_same_result(roomy.result(), squeezed.result());
}

TEST(DeterminismTest, IncrementalRunsMatchOneShot) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine oneshot(small_stream(), corpus.network);
  oneshot.run_all();
  StreamEngine stepped(small_stream(), corpus.network);
  const std::uint64_t total = stepped.total_events();
  stepped.run_until(total / 4);
  EXPECT_EQ(stepped.events_applied(), total / 4);
  stepped.run_until(total / 4);  // no-op: the stream cannot rewind
  EXPECT_EQ(stepped.events_applied(), total / 4);
  stepped.run_until(3 * total / 4);
  stepped.run_all();
  expect_same_result(oneshot.result(), stepped.result());
}

// -------------------------------------------------------- online hooks ---

TEST(OnlineHooksTest, PredictionAndPromotionFireAtTheRightVote) {
  const auto& corpus = small_corpus().corpus;
  const std::vector<core::StoryFeatures> batch_fp =
      core::extract_features(corpus.front_page, corpus.network);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(batch_fp);

  StreamParams params;
  params.predictor = &predictor;
  StreamEngine engine(small_stream(), corpus.network, params);
  engine.run_all();
  const StreamResult result = engine.result();

  const std::vector<core::StoryFeatures> batch_up =
      core::extract_features(corpus.upcoming, corpus.network);
  std::size_t fired = 0;
  for (std::size_t i = 0; i < result.stories.size(); ++i) {
    SCOPED_TRACE("story slot " + std::to_string(i));
    const StoryOutcome& o = result.stories[i];
    const core::StoryFeatures& b = i < batch_fp.size()
                                       ? batch_fp[i]
                                       : batch_up[i - batch_fp.size()];
    // The online verdict exists iff the story reached ten non-submitter
    // votes, and then matches the batch predictor on the batch features.
    if (o.final_votes >= 11) {
      ASSERT_TRUE(o.predicted_interesting.has_value());
      EXPECT_EQ(*o.predicted_interesting, predictor.predict(b));
      ++fired;
    } else {
      EXPECT_FALSE(o.predicted_interesting.has_value());
    }
    // The promotion hook records the exact arrival time of vote 43.
    const platform::StoryView& sv = small_stream().stories[i];
    if (sv.vote_count() >= 43) {
      ASSERT_TRUE(o.promoted_time.has_value());
      EXPECT_EQ(*o.promoted_time, sv.times()[42]);
    } else {
      EXPECT_FALSE(o.promoted_time.has_value());
    }
  }
  EXPECT_GT(fired, 0u);
}

// -------------------------------------------------- checkpoint/restore ---

TEST_F(StreamTest, CheckpointRoundTripReproducesFinalState) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine oneshot(small_stream(), corpus.network);
  oneshot.run_all();

  StreamEngine writer(small_stream(), corpus.network);
  const std::uint64_t cut = writer.total_events() / 3;
  writer.run_until(cut);
  const auto path = file("mid.ckpt");
  writer.save_checkpoint(path);

  const CheckpointInfo info = read_checkpoint_info(path);
  EXPECT_EQ(info.version, kStreamCheckpointVersion);
  EXPECT_EQ(info.fingerprint, writer.fingerprint());
  EXPECT_EQ(info.events_applied, cut);
  EXPECT_EQ(info.total_events, writer.total_events());
  EXPECT_EQ(info.story_count, corpus.story_count());

  // A fresh engine restores the kill point and finishes the stream; a
  // different thread count on the resumed half must not matter either.
  ThreadGuard guard(2);
  StreamEngine resumed(small_stream(), corpus.network);
  resumed.restore_checkpoint(path);
  EXPECT_EQ(resumed.events_applied(), cut);
  resumed.run_all();
  expect_same_result(oneshot.result(), resumed.result());
}

// The serialized checkpoint must not depend on the in-memory visibility
// representation or residency: an engine killed mid-stream and resumed on a
// fresh process writes a final checkpoint byte-for-byte identical to an
// uninterrupted run's (visibility sets are rebuilt lazily, never persisted,
// so eviction/promotion history cannot leak into the file).
TEST_F(StreamTest, CheckpointBytesIdenticalAcrossKillAndResume) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine oneshot(small_stream(), corpus.network);
  oneshot.run_all();
  const auto straight = file("straight.ckpt");
  oneshot.save_checkpoint(straight);

  StreamEngine writer(small_stream(), corpus.network);
  writer.run_until(writer.total_events() / 3);
  const auto mid = file("mid.ckpt");
  writer.save_checkpoint(mid);

  StreamEngine resumed(small_stream(), corpus.network);
  resumed.restore_checkpoint(mid);
  resumed.run_all();
  const auto rejoined = file("rejoined.ckpt");
  resumed.save_checkpoint(rejoined);

  EXPECT_EQ(slurp(straight), slurp(rejoined));
  expect_same_result(oneshot.result(), resumed.result());
}

TEST_F(StreamTest, CheckpointRestoreRewindsAFinishedEngine) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_until(engine.total_events() / 2);
  const auto path = file("half.ckpt");
  engine.save_checkpoint(path);
  engine.run_all();
  const StreamResult finished = engine.result();

  engine.restore_checkpoint(path);
  EXPECT_EQ(engine.events_applied(), engine.total_events() / 2);
  engine.run_all();
  expect_same_result(finished, engine.result());
}

TEST_F(StreamTest, RejectsMalformedCheckpoints) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_until(engine.total_events() / 2);
  const auto path = file("good.ckpt");
  engine.save_checkpoint(path);
  const std::vector<char> good = slurp(path);
  ASSERT_GT(good.size(), 64u);

  const auto expect_throw = [&](const std::filesystem::path& p,
                                const std::string& needle) {
    try {
      engine.restore_checkpoint(p);
      FAIL() << "expected restore to reject " << p;
    } catch (const std::runtime_error& err) {
      EXPECT_NE(std::string(err.what()).find(needle), std::string::npos)
          << err.what();
    }
  };

  {
    std::vector<char> bad = good;
    bad[1] = 'X';
    spew(file("magic.ckpt"), bad);
    expect_throw(file("magic.ckpt"), "bad magic");
  }
  {
    std::vector<char> bad = good;
    bad[good.size() / 2] ^= 0x20;
    spew(file("flip.ckpt"), bad);
    expect_throw(file("flip.ckpt"), "checksum mismatch");
  }
  {
    std::vector<char> bad = good;
    bad.resize(bad.size() / 2);
    spew(file("trunc.ckpt"), bad);
    expect_throw(file("trunc.ckpt"), "truncated");
  }
}

TEST_F(StreamTest, RejectsCheckpointFromDifferentStreamOrConfig) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine engine(small_stream(), corpus.network);
  engine.run_until(1000);
  const auto path = file("mine.ckpt");
  engine.save_checkpoint(path);

  // Same container, different corpus: the fingerprint must refuse it.
  stats::Rng rng(7);
  data::SyntheticParams params;
  params.user_count = 8000;
  params.story_count = 60;
  params.vote_model.step = 2.0;
  const data::SyntheticCorpus other = data::generate_corpus(params, rng);
  const EventStream other_stream = build_event_stream(other.corpus);
  StreamEngine other_engine(other_stream, other.corpus.network);
  EXPECT_THROW(
      {
        try {
          other_engine.restore_checkpoint(path);
        } catch (const std::runtime_error& err) {
          EXPECT_NE(std::string(err.what()).find("fingerprint mismatch"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);

  // Same stream, different engine configuration.
  StreamParams other_params;
  other_params.promotion_threshold = 50;
  StreamEngine reconfigured(small_stream(), corpus.network, other_params);
  EXPECT_THROW(
      {
        try {
          reconfigured.restore_checkpoint(path);
        } catch (const std::runtime_error& err) {
          EXPECT_NE(std::string(err.what()).find("config mismatch"),
                    std::string::npos);
          throw;
        }
      },
      std::runtime_error);
}

TEST_F(StreamTest, RejectsForgedProgressColumns) {
  const auto& corpus = small_corpus().corpus;
  StreamEngine engine(small_stream(), corpus.network);
  const std::uint64_t cut = 500;
  engine.run_until(cut);

  // Forge a container that passes every integrity check up to the payload
  // semantics: valid magic/checksum, matching fingerprint and config, but
  // an applied column that is not the stream's 500-event prefix.
  const std::size_t stories = corpus.story_count();
  // Reproduce the engine's global (time, slot, index) order independently:
  // flatten every (time, slot) key, stable-sort (stability keeps equal-time
  // votes of one story in index order), and count the first `cut`.
  std::vector<std::pair<double, std::uint32_t>> keys;
  for (std::uint32_t slot = 0; slot < small_stream().stories.size(); ++slot)
    for (const double t : small_stream().stories[slot].times())
      keys.emplace_back(t, slot);
  std::stable_sort(keys.begin(), keys.end());
  std::vector<std::uint64_t> applied(stories, 0);
  for (std::uint64_t i = 0; i < cut; ++i) ++applied[keys[i].second];
  // Move one vote between two stories: totals still sum to `cut`.
  std::size_t donor = 0;
  while (applied[donor] == 0) ++donor;
  applied[donor] -= 1;
  applied[(donor + 1) % stories] += 1;

  snapfmt::Section sections[2];
  sections[0].type = snapfmt::kStreamMeta;
  snapfmt::ByteBuffer& meta = sections[0].body;
  meta.pod<std::uint32_t>(kStreamCheckpointVersion);
  meta.pod<std::uint32_t>(0);  // predictor not armed
  meta.pod<std::uint64_t>(engine.fingerprint());
  meta.pod<std::uint64_t>(engine.total_events());
  meta.pod<std::uint64_t>(cut);
  meta.pod<std::uint64_t>(stories);
  meta.pod<std::uint64_t>(core::kInterestingnessThreshold);
  meta.pod<std::uint32_t>(43);
  meta.pod<std::uint32_t>(0);  // bayes fit disabled
  meta.pod<std::uint32_t>(0);  // bayes fit_at (unread when disabled)
  meta.pod<std::uint32_t>(0);  // replay mode (not a live checkpoint)
  meta.pod<std::uint32_t>(3);
  for (std::uint32_t cp : {6u, 10u, 20u}) meta.pod<std::uint32_t>(cp);
  meta.pod<std::uint32_t>(3);
  for (std::uint32_t cp : {1u, 11u, 21u}) meta.pod<std::uint32_t>(cp);

  sections[1].type = snapfmt::kStreamState;
  snapfmt::ByteBuffer& state = sections[1].body;
  state.column(applied);
  state.column(std::vector<std::uint32_t>(stories, 0));  // innetwork
  state.column(std::vector<std::uint8_t>(stories, 0));   // flags
  state.column(std::vector<double>(stories, 0.0));       // promoted_time
  state.column(std::vector<std::uint32_t>(stories * 3, 0xffffffffu));
  state.column(std::vector<std::uint32_t>(stories * 3, 0xffffffffu));

  const auto path = file("forged.ckpt");
  snapfmt::write_section_file(path, sections);
  try {
    engine.restore_checkpoint(path);
    FAIL() << "expected the forged prefix to be rejected";
  } catch (const std::runtime_error& err) {
    EXPECT_NE(std::string(err.what()).find("not a stream prefix"),
              std::string::npos)
        << err.what();
  }
  // The failed restore must not have corrupted the engine.
  EXPECT_EQ(engine.events_applied(), cut);
  engine.run_all();
}

}  // namespace
}  // namespace digg::stream
