#include "src/dynamics/cascade_sim.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

// Chain of fans: activation flows 0 -> 1 -> 2 -> 3 (i+1 is a fan of i).
graph::Digraph fan_chain(std::size_t n) {
  graph::DigraphBuilder b(n);
  for (graph::NodeId u = 0; u + 1 < n; ++u) b.add_fan(u, u + 1);
  return b.build();
}

TEST(IndependentCascade, ZeroProbabilityActivatesOnlySeeds) {
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 0.0;
  const CascadeResult r = independent_cascade(fan_chain(10), {0, 5}, params, rng);
  EXPECT_EQ(r.total_activated, 2u);
  EXPECT_EQ(r.depth(), 0u);
}

TEST(IndependentCascade, CertainActivationFloodsChain) {
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 1.0;
  const CascadeResult r = independent_cascade(fan_chain(10), {0}, params, rng);
  EXPECT_EQ(r.total_activated, 10u);
  EXPECT_EQ(r.depth(), 9u);
  for (bool a : r.activated) EXPECT_TRUE(a);
}

TEST(IndependentCascade, PerRoundCountsSumToTotal) {
  stats::Rng rng(5);
  CascadeParams params;
  params.activation_prob = 0.5;
  const CascadeResult r =
      independent_cascade(fan_chain(50), {0}, params, rng);
  const std::size_t sum =
      std::accumulate(r.per_round.begin(), r.per_round.end(), std::size_t{0});
  EXPECT_EQ(sum, r.total_activated);
}

TEST(IndependentCascade, MaxRoundsCapsDepth) {
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 1.0;
  params.max_rounds = 3;
  const CascadeResult r = independent_cascade(fan_chain(10), {0}, params, rng);
  EXPECT_EQ(r.total_activated, 4u);  // seed + 3 rounds
}

TEST(IndependentCascade, DuplicateSeedsCountedOnce) {
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 0.0;
  const CascadeResult r =
      independent_cascade(fan_chain(5), {2, 2, 2}, params, rng);
  EXPECT_EQ(r.total_activated, 1u);
}

TEST(IndependentCascade, RejectsBadInput) {
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 1.5;
  EXPECT_THROW(independent_cascade(fan_chain(5), {0}, params, rng),
               std::invalid_argument);
  params.activation_prob = 0.5;
  EXPECT_THROW(independent_cascade(fan_chain(5), {99}, params, rng),
               std::out_of_range);
}

TEST(IndependentCascade, ActivationFollowsFanEdgesOnly) {
  // 1 is a fan of 0; activating 1 must NOT activate 0 (0 doesn't watch 1).
  graph::DigraphBuilder b(2);
  b.add_fan(0, 1);
  stats::Rng rng(1);
  CascadeParams params;
  params.activation_prob = 1.0;
  const CascadeResult r = independent_cascade(b.build(), {1}, params, rng);
  EXPECT_EQ(r.total_activated, 1u);
}

TEST(MeanCascadeSize, MonotoneInActivationProbability) {
  stats::Rng rng1(3);
  stats::Rng rng2(3);
  graph::PreferentialAttachmentParams net_params;
  net_params.node_count = 500;
  stats::Rng net_rng(9);
  const graph::Digraph g = graph::preferential_attachment(net_params, net_rng);
  CascadeParams low;
  low.activation_prob = 0.02;
  CascadeParams high;
  high.activation_prob = 0.3;
  EXPECT_LT(mean_cascade_size(g, low, 200, rng1),
            mean_cascade_size(g, high, 200, rng2));
}

TEST(MeanCascadeSize, RejectsZeroTrials) {
  stats::Rng rng(1);
  EXPECT_THROW(mean_cascade_size(fan_chain(5), {}, 0, rng),
               std::invalid_argument);
}

TEST(GlobalCascadeProbability, BoundsAndExtremes) {
  stats::Rng rng(7);
  // Bidirectional chain: with certain activation any seed floods the graph.
  graph::DigraphBuilder b(20);
  for (graph::NodeId u = 0; u + 1 < 20; ++u) {
    b.add_fan(u, u + 1);
    b.add_fan(u + 1, u);
  }
  const graph::Digraph chain = b.build();
  CascadeParams sure;
  sure.activation_prob = 1.0;
  EXPECT_DOUBLE_EQ(global_cascade_probability(chain, sure, 20, 0.9, rng), 1.0);
  CascadeParams never;
  never.activation_prob = 0.0;
  EXPECT_DOUBLE_EQ(global_cascade_probability(chain, never, 20, 0.5, rng),
                   0.0);
}

TEST(GlobalCascadeProbability, DirectedChainDependsOnSeedPosition) {
  // On a one-way fan chain, only seeds near the head reach 90% of nodes, so
  // the probability is roughly the fraction of such seeds.
  stats::Rng rng(9);
  CascadeParams sure;
  sure.activation_prob = 1.0;
  const double p = global_cascade_probability(fan_chain(20), sure, 400, 0.9, rng);
  EXPECT_GT(p, 0.02);
  EXPECT_LT(p, 0.35);
}

TEST(GlobalCascadeProbability, RejectsBadFraction) {
  stats::Rng rng(1);
  EXPECT_THROW(global_cascade_probability(fan_chain(5), {}, 10, 0.0, rng),
               std::invalid_argument);
  EXPECT_THROW(global_cascade_probability(fan_chain(5), {}, 10, 1.5, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace digg::dynamics
