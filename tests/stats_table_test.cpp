#include "src/stats/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace digg::stats {
namespace {

TEST(TextTable, RendersHeaderAndRows) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TextTable, ColumnsAligned) {
  TextTable t({"a", "b"});
  t.add_row({"xxxx", "1"});
  t.add_row({"y", "2"});
  const std::string out = t.render();
  // Column b starts at the same offset in both data lines.
  std::istringstream is(out);
  std::string header, underline, r1, r2;
  std::getline(is, header);
  std::getline(is, underline);
  std::getline(is, r1);
  std::getline(is, r2);
  EXPECT_EQ(r1.find('1'), r2.find('2'));
}

TEST(TextTable, RejectsEmptyHeaderAndMismatchedRows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(TextTable, PrintWritesToStream) {
  TextTable t({"h"});
  t.add_row({"v"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str(), t.render());
}

TEST(Fmt, FormatsNumbers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(std::int64_t{-42}), "-42");
  EXPECT_EQ(fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(fmt_pct(0.357), "35.7%");
  EXPECT_EQ(fmt_pct(1.0), "100.0%");
}

TEST(RenderBars, ScalesToMaxWidth) {
  std::vector<Bin> bins = {{0, 10, 10}, {10, 20, 5}, {20, 30, 0}};
  const std::string out = render_bars(bins, 10);
  // Largest bin gets 10 hashes, half-size bin gets 5, empty none.
  EXPECT_NE(out.find("##########"), std::string::npos);
  EXPECT_EQ(out.find("###########"), std::string::npos);
}

TEST(RenderBars, ItemsVariantIncludesValues) {
  const std::string out =
      render_bars(std::vector<std::pair<std::int64_t, std::uint64_t>>{
          {3, 7}, {4, 14}});
  EXPECT_NE(out.find('3'), std::string::npos);
  EXPECT_NE(out.find("14"), std::string::npos);
}

TEST(RenderBars, AllZeroCountsProduceNoBars) {
  std::vector<Bin> bins = {{0, 1, 0}, {1, 2, 0}};
  const std::string out = render_bars(bins, 10);
  EXPECT_EQ(out.find('#'), std::string::npos);
}

TEST(RenderSeries, OneLinePerSample) {
  const std::string out = render_series({0.0, 1.0, 2.0}, {0.0, 5.0, 10.0}, 20);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 3);
}

TEST(RenderSeries, RejectsMismatchedSizes) {
  EXPECT_THROW(render_series({0.0}, {1.0, 2.0}), std::invalid_argument);
}

}  // namespace
}  // namespace digg::stats
