#include "src/ml/forest.h"

#include <gtest/gtest.h>

#include "src/ml/validation.h"

namespace digg::ml {
namespace {

Dataset noisy_threshold_data(std::size_t n, double noise, std::uint64_t seed) {
  Dataset d({{"x", AttributeKind::kNumeric, {}},
             {"y", AttributeKind::kNumeric, {}}},
            {"no", "yes"});
  stats::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 1.0);
    const double y = rng.uniform(0.0, 1.0);
    bool label = x > 0.5;
    if (rng.bernoulli(noise)) label = !label;
    d.add({x, y}, label ? 1 : 0);
  }
  return d;
}

TEST(Forest, LearnsSimpleBoundary) {
  const Dataset d = noisy_threshold_data(300, 0.0, 1);
  stats::Rng rng(2);
  const Forest f = Forest::train(d, {}, rng);
  EXPECT_EQ(f.size(), 25u);
  EXPECT_EQ(f.predict({0.9, 0.5}), 1u);
  EXPECT_EQ(f.predict({0.1, 0.5}), 0u);
}

TEST(Forest, ProbaIsDistributionAndOrdered) {
  const Dataset d = noisy_threshold_data(300, 0.1, 3);
  stats::Rng rng(4);
  const Forest f = Forest::train(d, {}, rng);
  const auto hi = f.predict_proba({0.95, 0.5});
  const auto lo = f.predict_proba({0.05, 0.5});
  EXPECT_NEAR(hi[0] + hi[1], 1.0, 1e-9);
  EXPECT_GT(hi[1], lo[1]);
}

TEST(Forest, EnsembleAtLeastMatchesSingleTreeOnNoisyData) {
  const Dataset train = noisy_threshold_data(200, 0.25, 5);
  const Dataset test = noisy_threshold_data(400, 0.0, 6);
  stats::Rng rng(7);
  ForestParams params;
  params.tree_count = 31;
  const Forest forest = Forest::train(train, params, rng);
  const DecisionTree single = DecisionTree::train(train);
  const Confusion forest_result = evaluate(
      [&](const std::vector<double>& row) { return forest.predict(row); },
      test);
  const Confusion single_result = evaluate(
      [&](const std::vector<double>& row) { return single.predict(row); },
      test);
  EXPECT_GE(forest_result.accuracy() + 0.03, single_result.accuracy());
  EXPECT_GT(forest_result.accuracy(), 0.8);
}

TEST(Forest, TreeAccessorBoundsChecked) {
  const Dataset d = noisy_threshold_data(50, 0.0, 8);
  stats::Rng rng(9);
  ForestParams params;
  params.tree_count = 3;
  const Forest f = Forest::train(d, params, rng);
  EXPECT_NO_THROW(f.tree(2));
  EXPECT_THROW(f.tree(3), std::out_of_range);
}

TEST(Forest, RejectsBadParameters) {
  const Dataset d = noisy_threshold_data(50, 0.0, 10);
  stats::Rng rng(1);
  ForestParams params;
  params.tree_count = 0;
  EXPECT_THROW(Forest::train(d, params, rng), std::invalid_argument);
  params.tree_count = 5;
  params.bag_fraction = 0.0;
  EXPECT_THROW(Forest::train(d, params, rng), std::invalid_argument);
  params.bag_fraction = 1.5;
  EXPECT_THROW(Forest::train(d, params, rng), std::invalid_argument);
  Dataset empty({{"x", AttributeKind::kNumeric, {}}}, {"a", "b"});
  params.bag_fraction = 1.0;
  EXPECT_THROW(Forest::train(empty, params, rng), std::invalid_argument);
}

TEST(Forest, DeterministicGivenSeed) {
  const Dataset d = noisy_threshold_data(100, 0.2, 11);
  stats::Rng a(12);
  stats::Rng b(12);
  const Forest fa = Forest::train(d, {}, a);
  const Forest fb = Forest::train(d, {}, b);
  for (double x = 0.05; x < 1.0; x += 0.1) {
    EXPECT_EQ(fa.predict({x, 0.5}), fb.predict({x, 0.5}));
  }
}

TEST(ForestTrainer, WorksWithCrossValidation) {
  const Dataset d = noisy_threshold_data(120, 0.1, 13);
  stats::Rng rng(14);
  ForestParams params;
  params.tree_count = 9;
  const CrossValidationResult cv =
      cross_validate(forest_trainer(params, 99), d, 5, rng);
  EXPECT_GT(cv.pooled.accuracy(), 0.75);
}

}  // namespace
}  // namespace digg::ml
