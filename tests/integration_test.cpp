// End-to-end integration: generate a corpus, round-trip it through CSV,
// and verify every experiment runner produces identical headline numbers on
// the loaded copy — the guarantee that real scraped data can be substituted
// for the synthetic generator without touching analysis code.

#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "src/core/experiment.h"
#include "src/data/io.h"
#include "src/data/synthetic.h"

namespace digg {
namespace {

namespace fs = std::filesystem;

class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    stats::Rng rng(99);
    data::SyntheticParams params;
    params.story_count = 250;  // default (calibrated) user count
    params.vote_model.step = 2.0;
    corpus_ = new data::SyntheticCorpus(data::generate_corpus(params, rng));
    // One directory per process: ctest runs each case as its own process in
    // parallel, and a shared path races against a sibling's TearDownTestSuite.
    dir_ = fs::temp_directory_path() /
           ("digg_integration_test_" + std::to_string(::getpid()));
    fs::remove_all(dir_);
    data::save_corpus(corpus_->corpus, dir_);
    loaded_ = new data::Corpus(data::load_corpus(dir_));
  }
  static void TearDownTestSuite() {
    fs::remove_all(dir_);
    delete corpus_;
    delete loaded_;
    corpus_ = nullptr;
    loaded_ = nullptr;
  }

  static data::SyntheticCorpus* corpus_;
  static data::Corpus* loaded_;
  static fs::path dir_;
};

data::SyntheticCorpus* PipelineTest::corpus_ = nullptr;
data::Corpus* PipelineTest::loaded_ = nullptr;
fs::path PipelineTest::dir_;

TEST_F(PipelineTest, RoundTripPreservesFig2a) {
  const core::Fig2aResult a = core::fig2a_vote_histogram(corpus_->corpus);
  const core::Fig2aResult b = core::fig2a_vote_histogram(*loaded_);
  EXPECT_DOUBLE_EQ(a.fraction_below_500, b.fraction_below_500);
  EXPECT_DOUBLE_EQ(a.fraction_above_1500, b.fraction_above_1500);
  EXPECT_DOUBLE_EQ(a.votes_summary.median, b.votes_summary.median);
}

TEST_F(PipelineTest, RoundTripPreservesCascades) {
  const core::Fig3bResult a = core::fig3b_cascades(corpus_->corpus);
  const core::Fig3bResult b = core::fig3b_cascades(*loaded_);
  EXPECT_DOUBLE_EQ(a.frac_half_of_first10, b.frac_half_of_first10);
  EXPECT_EQ(a.cascade_after_20.items(), b.cascade_after_20.items());
}

TEST_F(PipelineTest, RoundTripPreservesInfluence) {
  const core::Fig3aResult a = core::fig3a_influence(corpus_->corpus);
  const core::Fig3aResult b = core::fig3a_influence(*loaded_);
  EXPECT_EQ(a.after_10, b.after_10);
  EXPECT_EQ(a.after_20, b.after_20);
}

TEST_F(PipelineTest, RoundTripPreservesFig4Signal) {
  const core::Fig4Result a = core::fig4_innetwork_vs_final(corpus_->corpus);
  const core::Fig4Result b = core::fig4_innetwork_vs_final(*loaded_);
  EXPECT_DOUBLE_EQ(a.spearman_v10_final, b.spearman_v10_final);
  ASSERT_EQ(a.after_10.size(), b.after_10.size());
}

TEST_F(PipelineTest, RoundTripPreservesFig5GivenSameSeed) {
  stats::Rng rng_a(5);
  stats::Rng rng_b(5);
  const core::Fig5Result a =
      core::fig5_prediction(corpus_->corpus, core::Fig5Params{}, rng_a);
  const core::Fig5Result b =
      core::fig5_prediction(*loaded_, core::Fig5Params{}, rng_b);
  EXPECT_EQ(a.holdout.to_string(), b.holdout.to_string());
  EXPECT_EQ(a.digg_promoted, b.digg_promoted);
  EXPECT_EQ(a.ours_predicted, b.ours_predicted);
  EXPECT_EQ(a.predictor.tree().render(), b.predictor.tree().render());
}

TEST_F(PipelineTest, ActivitySkewStable) {
  const core::ActivitySkewResult a = core::text_activity_skew(corpus_->corpus);
  const core::ActivitySkewResult b = core::text_activity_skew(*loaded_);
  EXPECT_EQ(a.min_front_page_votes, b.min_front_page_votes);
  EXPECT_EQ(a.max_upcoming_votes, b.max_upcoming_votes);
  EXPECT_DOUBLE_EQ(a.top3pct_submission_share, b.top3pct_submission_share);
}

TEST_F(PipelineTest, PaperHeadlineClaimsHoldOnThisCorpus) {
  // The three claims the paper's abstract makes, on a fresh corpus:
  // 1. Early in-network votes anticipate (inversely) final popularity.
  const core::Fig4Result fig4 = core::fig4_innetwork_vs_final(*loaded_);
  EXPECT_LT(fig4.spearman_v10_final, -0.25);

  // 2. A classifier on (v10, fans1) predicts interestingness well above
  //    chance from the first ten votes.
  stats::Rng rng(21);
  const core::Fig5Result fig5 =
      core::fig5_prediction(*loaded_, core::Fig5Params{}, rng);
  EXPECT_GT(fig5.cross_validation.pooled.accuracy(), 0.6);

  // 3. The social-signal prediction is at least as precise as the
  //    platform's own promotion decision on top-user stories.
  //    (Stochastic on a 48-story holdout; allow a small slack band.)
  EXPECT_GT(fig5.our_precision(), fig5.digg_precision() - 0.15);
}

}  // namespace
}  // namespace digg
