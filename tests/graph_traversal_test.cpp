#include "src/graph/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace digg::graph {
namespace {

Digraph path_graph() {
  // 0 -> 1 -> 2 -> 3
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(1, 2);
  b.add_follow(2, 3);
  return b.build();
}

TEST(BfsDistances, DirectedAlongFollowingEdges) {
  const Digraph g = path_graph();
  const auto d = bfs_distances(g, 0, Direction::kFollowing);
  EXPECT_EQ(d[0], 0u);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[3], 3u);
}

TEST(BfsDistances, FansDirectionReverses) {
  const Digraph g = path_graph();
  const auto d = bfs_distances(g, 3, Direction::kFans);
  EXPECT_EQ(d[0], 3u);
  const auto d2 = bfs_distances(g, 0, Direction::kFans);
  EXPECT_EQ(d2[3], kUnreachable);
}

TEST(BfsDistances, BothIgnoresDirection) {
  const Digraph g = path_graph();
  const auto d = bfs_distances(g, 3, Direction::kBoth);
  EXPECT_EQ(d[0], 3u);
}

TEST(BfsDistances, UnreachableMarked) {
  DigraphBuilder b(4);
  b.add_follow(0, 1);
  const auto d = bfs_distances(b.build(), 0, Direction::kBoth);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(BfsDistances, BadSourceThrows) {
  EXPECT_THROW(bfs_distances(path_graph(), 9), std::out_of_range);
}

TEST(WeakComponents, LabelsComponentsConsistently) {
  DigraphBuilder b(6);
  b.add_follow(0, 1);
  b.add_follow(2, 3);
  const auto label = weak_components(b.build());
  EXPECT_EQ(label[0], label[1]);
  EXPECT_EQ(label[2], label[3]);
  EXPECT_NE(label[0], label[2]);
  EXPECT_NE(label[4], label[5]);
}

TEST(ComponentSizes, SortedDescending) {
  DigraphBuilder b(7);
  b.add_follow(0, 1);
  b.add_follow(1, 2);
  b.add_follow(3, 4);
  const auto sizes = component_sizes(b.build());
  ASSERT_EQ(sizes.size(), 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(sizes[0], 3u);
  EXPECT_EQ(sizes[1], 2u);
  EXPECT_TRUE(std::is_sorted(sizes.rbegin(), sizes.rend()));
}

TEST(GiantComponentFraction, FullAndEmptyGraphs) {
  EXPECT_DOUBLE_EQ(giant_component_fraction(DigraphBuilder(0).build()), 0.0);
  EXPECT_DOUBLE_EQ(giant_component_fraction(path_graph()), 1.0);
  DigraphBuilder b(4);
  b.add_follow(0, 1);
  EXPECT_DOUBLE_EQ(giant_component_fraction(b.build()), 0.5);
}

TEST(Neighborhood, OneHopFansAreExactlyFans) {
  DigraphBuilder b;
  b.add_follow(1, 0);
  b.add_follow(2, 0);
  b.add_follow(0, 3);
  const Digraph g = b.build();
  auto n = neighborhood(g, 0, 1, Direction::kFans);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2}));
}

TEST(Neighborhood, TwoHopsExpandsFrontier) {
  // fans chain: 3 -> 2 -> 1 -> 0 (3 watches 2, etc.)
  DigraphBuilder b;
  b.add_follow(3, 2);
  b.add_follow(2, 1);
  b.add_follow(1, 0);
  const Digraph g = b.build();
  auto n = neighborhood(g, 0, 2, Direction::kFans);
  std::sort(n.begin(), n.end());
  EXPECT_EQ(n, (std::vector<NodeId>{1, 2}));
}

TEST(Neighborhood, ExcludesSource) {
  const Digraph g = path_graph();
  const auto n = neighborhood(g, 1, 5, Direction::kBoth);
  EXPECT_EQ(std::count(n.begin(), n.end(), 1u), 0);
  EXPECT_EQ(n.size(), 3u);
}

TEST(Neighborhood, ZeroHopsIsEmpty) {
  EXPECT_TRUE(neighborhood(path_graph(), 0, 0, Direction::kBoth).empty());
}

}  // namespace
}  // namespace digg::graph
