#include "src/core/experiment.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"

namespace digg::core {
namespace {

// One shared corpus for all experiment-shape tests (generation is the
// expensive part). Uses the calibrated default scale — the promotion
// dynamics depend on realistic fan-wave sizes — with a reduced story count.
const data::SyntheticCorpus& shared_corpus() {
  static const data::SyntheticCorpus corpus = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.story_count = 500;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return corpus;
}

TEST(VoteTimeseries, CumulativeAndAlignedToSubmission) {
  const data::Story& s = shared_corpus().corpus.front_page.front();
  const stats::TimeSeries ts = vote_timeseries(s);
  ASSERT_EQ(ts.size(), s.vote_count());
  EXPECT_DOUBLE_EQ(ts.times().front(), 0.0);
  EXPECT_DOUBLE_EQ(ts.values().front(), 1.0);
  EXPECT_DOUBLE_EQ(ts.values().back(), static_cast<double>(s.vote_count()));
  EXPECT_TRUE(std::is_sorted(ts.values().begin(), ts.values().end()));
}

TEST(Fig1, CurvesSaturateAndMostlyExplodeAtPromotion) {
  stats::Rng rng(1);
  const Fig1Result fig1 = fig1_vote_dynamics(shared_corpus().corpus, 40, rng);
  ASSERT_EQ(fig1.curves.size(), 40u);
  std::size_t exploding = 0;
  for (const auto& curve : fig1.curves) {
    ASSERT_TRUE(curve.promoted_after.has_value());
    const double tp = *curve.promoted_after;
    // Saturation (Fig. 1's flattening): the first post-promotion day brings
    // more votes than the last day of the horizon, for every story.
    const double first_day = curve.series.at(tp + 1440.0) - curve.series.at(tp);
    const double last_day =
        curve.series.values().back() -
        curve.series.at(curve.series.times().back() - 1440.0);
    EXPECT_GT(first_day, last_day);
    // Explosion at promotion for the typical story: the first two front-page
    // hours beat the average upcoming-queue rate. (Stories promoted purely
    // by a fast fan wave — dull top-user submissions — may not explode;
    // that is the §5 phenomenon itself, so only a majority is required.)
    const double pre_rate = curve.series.at(tp) / tp;
    const double post_rate =
        (curve.series.at(tp + 120.0) - curve.series.at(tp)) / 120.0;
    if (post_rate > pre_rate) ++exploding;
  }
  EXPECT_GT(exploding, 20u);
}

TEST(Fig1, RequestingMoreCurvesThanStoriesClamps) {
  stats::Rng rng(2);
  const Fig1Result fig1 =
      fig1_vote_dynamics(shared_corpus().corpus, 1000000, rng);
  EXPECT_EQ(fig1.curves.size(), shared_corpus().corpus.front_page.size());
}

TEST(Fig1, ThrowsWithoutFrontPage) {
  stats::Rng rng(1);
  data::Corpus empty;
  EXPECT_THROW(fig1_vote_dynamics(empty, 5, rng), std::invalid_argument);
}

TEST(Fig2a, BimodalFractionsRoughlyPaperShaped) {
  const Fig2aResult r = fig2a_vote_histogram(shared_corpus().corpus);
  EXPECT_EQ(r.histogram.total(), shared_corpus().corpus.front_page.size());
  // Paper: ~20% below 500 and ~20% above 1500. Accept a broad band.
  EXPECT_GT(r.fraction_below_500, 0.10);
  EXPECT_LT(r.fraction_below_500, 0.55);
  EXPECT_GT(r.fraction_above_1500, 0.05);
  EXPECT_LT(r.fraction_above_1500, 0.45);
  EXPECT_GT(r.votes_summary.median, 400.0);
  EXPECT_LT(r.votes_summary.median, 1600.0);
}

TEST(Fig2b, ActivityHeavyTailed) {
  const Fig2bResult r = fig2b_user_activity(shared_corpus().corpus);
  EXPECT_GT(r.distinct_voters, 1000u);
  EXPECT_GT(r.distinct_submitters, 10u);
  // Most users vote once or twice; a few vote on dozens of stories.
  EXPECT_GE(r.votes_per_user.max_value(), 20);
  EXPECT_EQ(r.votes_per_user.min_value(), 1);
  EXPECT_GT(r.votes_fit.alpha, 1.2);
  // Submission counts skewed: someone submitted many front-page stories.
  EXPECT_GE(r.submissions_per_user.max_value(), 5);
}

TEST(Fig3a, InfluenceGrowsWithVotes) {
  const Fig3aResult r = fig3a_influence(shared_corpus().corpus);
  const std::size_t n = shared_corpus().corpus.front_page.size();
  ASSERT_EQ(r.at_submission.size(), n);
  ASSERT_EQ(r.after_10.size(), n);
  ASSERT_EQ(r.after_20.size(), n);
  double sum0 = 0.0, sum10 = 0.0, sum20 = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum0 += static_cast<double>(r.at_submission[i]);
    sum10 += static_cast<double>(r.after_10[i]);
    sum20 += static_cast<double>(r.after_20[i]);
  }
  EXPECT_LT(sum0, sum10);
  EXPECT_LT(sum10, sum20);
  EXPECT_GT(r.fraction_visible_to_200_after_10, 0.05);
}

TEST(Fig3b, CascadesGrowWithVotes) {
  const Fig3bResult r = fig3b_cascades(shared_corpus().corpus);
  EXPECT_EQ(r.cascade_after_10.total(),
            shared_corpus().corpus.front_page.size());
  // Quoted §4.1 statistics should be in a plausible band.
  EXPECT_GT(r.frac_half_of_first10, 0.1);
  EXPECT_GE(r.frac_10plus_after30, r.frac_10plus_after20);
  // Cascade size after 10 votes can never exceed 10.
  EXPECT_LE(r.cascade_after_10.max_value(), 10);
  EXPECT_LE(r.cascade_after_20.max_value(), 20);
  EXPECT_LE(r.cascade_after_30.max_value(), 30);
}

TEST(Fig4, InverseRelationshipBetweenCascadeAndFinalVotes) {
  const Fig4Result r = fig4_innetwork_vs_final(shared_corpus().corpus);
  EXPECT_LT(r.spearman_v10_final, -0.3);  // the paper's headline relation
  ASSERT_FALSE(r.after_10.empty());
  // Median final votes at low v10 exceed median at high v10.
  const auto& groups = r.after_10;
  double low_median = 0.0, high_median = 0.0;
  for (const Fig4Group& g : groups) {
    if (g.in_network_votes <= 2 && g.final_votes.n >= 3)
      low_median = std::max(low_median, g.final_votes.median);
    if (g.in_network_votes >= 8 && g.final_votes.n >= 3)
      high_median = std::max(high_median, g.final_votes.median);
  }
  EXPECT_GT(low_median, high_median);
}

TEST(Fig4, GroupsSortedByCascadeSize) {
  const Fig4Result r = fig4_innetwork_vs_final(shared_corpus().corpus);
  for (std::size_t i = 1; i < r.after_6.size(); ++i)
    EXPECT_LT(r.after_6[i - 1].in_network_votes,
              r.after_6[i].in_network_votes);
}

TEST(Fig5, ReproducesPaperComparison) {
  stats::Rng rng(11);
  const Fig5Result r =
      fig5_prediction(shared_corpus().corpus, Fig5Params{}, rng);
  EXPECT_EQ(r.holdout_stories, r.holdout.total());
  EXPECT_LE(r.holdout_stories, 48u);
  EXPECT_GT(r.holdout_stories, 20u);
  EXPECT_GT(r.cross_validation.pooled.accuracy(), 0.65);
  // 500 stories at the calibrated ~20% promotion rate, minus the holdout's
  // front-page members.
  EXPECT_GT(r.training_stories, 40u);
  // Consistency of the precision bookkeeping.
  EXPECT_LE(r.digg_promoted_interesting, r.digg_promoted);
  EXPECT_LE(r.ours_predicted_interesting, r.ours_predicted);
  EXPECT_EQ(r.ours_predicted, r.holdout.tp + r.holdout.fp);
  EXPECT_EQ(r.ours_predicted_interesting, r.holdout.tp);
}

TEST(Fig5, HoldoutExcludedFromTraining) {
  stats::Rng rng(13);
  Fig5Params params;
  const Fig5Result r =
      fig5_prediction(shared_corpus().corpus, params, rng);
  EXPECT_LE(r.training_stories + r.holdout_stories,
            shared_corpus().corpus.front_page.size() +
                shared_corpus().corpus.upcoming.size());
  EXPECT_GE(shared_corpus().corpus.front_page.size(), r.training_stories);
}

TEST(TextActivitySkew, PromotionBoundaryAndConcentration) {
  const ActivitySkewResult r = text_activity_skew(shared_corpus().corpus);
  EXPECT_GE(r.min_front_page_votes, 43u);  // the paper's hard boundary
  EXPECT_GT(r.top3pct_submission_share, 0.15);  // strong concentration
  EXPECT_EQ(r.front_page_count, shared_corpus().corpus.front_page.size());
  EXPECT_EQ(r.upcoming_count, shared_corpus().corpus.upcoming.size());
}

TEST(FriendsFansScatter, TopUsersBetterConnected) {
  const auto scatter = friends_fans_scatter(shared_corpus().corpus, 100);
  double top_fans = 0.0, top_n = 0.0, other_fans = 0.0, other_n = 0.0;
  for (const ScatterPoint& p : scatter) {
    if (p.top_user) {
      top_fans += static_cast<double>(p.fans_plus_1);
      ++top_n;
    } else {
      other_fans += static_cast<double>(p.fans_plus_1);
      ++other_n;
    }
  }
  ASSERT_GT(top_n, 0.0);
  ASSERT_GT(other_n, 0.0);
  EXPECT_GT(top_fans / top_n, 5.0 * other_fans / other_n);
}

}  // namespace
}  // namespace digg::core
