#include "src/dynamics/threshold_model.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

// Chain where each node watches the previous: 1 watches 0, 2 watches 1, ...
// With threshold <= 1 the adoption travels the whole chain.
graph::Digraph watch_chain(std::size_t n) {
  graph::DigraphBuilder b(n);
  for (graph::NodeId u = 1; u < n; ++u) b.add_follow(u, u - 1);
  return b.build();
}

TEST(LinearThreshold, LowThresholdFloodsChain) {
  stats::Rng rng(1);
  ThresholdParams params;
  params.threshold_lo = params.threshold_hi = 0.5;
  const ThresholdResult r = linear_threshold(watch_chain(10), {0}, params, rng);
  EXPECT_EQ(r.total_adopted, 10u);
}

TEST(LinearThreshold, ImpossibleThresholdStopsAtSeeds) {
  stats::Rng rng(1);
  ThresholdParams params;
  // threshold above 1 is invalid; use 1.0 with a diluted neighborhood.
  params.threshold_lo = params.threshold_hi = 1.0;
  // Node 2 watches both 0 and 1; only 0 is seeded -> fraction 0.5 < 1.
  graph::DigraphBuilder b(3);
  b.add_follow(2, 0);
  b.add_follow(2, 1);
  const ThresholdResult r = linear_threshold(b.build(), {0}, params, rng);
  EXPECT_EQ(r.total_adopted, 1u);
}

TEST(LinearThreshold, PerRoundSumsToTotal) {
  stats::Rng rng(3);
  ThresholdParams params;
  params.threshold_lo = 0.2;
  params.threshold_hi = 0.6;
  const graph::Digraph g = graph::erdos_renyi(200, 0.04, rng);
  const ThresholdResult r = linear_threshold(g, {0, 1, 2, 3, 4}, params, rng);
  const std::size_t sum =
      std::accumulate(r.per_round.begin(), r.per_round.end(), std::size_t{0});
  EXPECT_EQ(sum, r.total_adopted);
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(r.adopted.begin(), r.adopted.end(), true)),
            r.total_adopted);
}

TEST(LinearThreshold, NodesWithoutFriendsNeverAdopt) {
  stats::Rng rng(1);
  ThresholdParams params;
  params.threshold_lo = params.threshold_hi = 0.0;
  graph::DigraphBuilder b(3);
  b.add_follow(1, 0);  // node 2 watches nobody
  const ThresholdResult r = linear_threshold(b.build(), {0}, params, rng);
  EXPECT_TRUE(r.adopted[1]);
  EXPECT_FALSE(r.adopted[2]);
}

TEST(LinearThreshold, MaxRoundsBoundsSpread) {
  stats::Rng rng(1);
  ThresholdParams params;
  params.threshold_lo = params.threshold_hi = 0.5;
  params.max_rounds = 3;
  const ThresholdResult r = linear_threshold(watch_chain(10), {0}, params, rng);
  EXPECT_EQ(r.total_adopted, 4u);  // seed + 3 rounds
}

TEST(LinearThreshold, RejectsBadInput) {
  stats::Rng rng(1);
  ThresholdParams params;
  params.threshold_lo = 0.8;
  params.threshold_hi = 0.2;
  EXPECT_THROW(linear_threshold(watch_chain(3), {0}, params, rng),
               std::invalid_argument);
  params = {};
  EXPECT_THROW(linear_threshold(watch_chain(3), {99}, params, rng),
               std::out_of_range);
}

TEST(CascadeWindowSweep, AdoptionDecreasesWithThreshold) {
  stats::Rng rng(5);
  const graph::Digraph g = graph::erdos_renyi(300, 8.0 / 299.0, rng);
  const auto sweep =
      cascade_window_sweep(g, {0.05, 0.4}, /*trials=*/10, rng, 100);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_GE(sweep[0].second, sweep[1].second);
  // Low threshold on a connected ER graph triggers near-global adoption.
  EXPECT_GT(sweep[0].second, 0.3);
}

TEST(CascadeWindowSweep, RejectsDegenerateInput) {
  stats::Rng rng(1);
  EXPECT_THROW(cascade_window_sweep(watch_chain(3), {0.5}, 0, rng),
               std::invalid_argument);
  EXPECT_THROW(
      cascade_window_sweep(graph::DigraphBuilder(0).build(), {0.5}, 5, rng),
      std::invalid_argument);
}

}  // namespace
}  // namespace digg::dynamics
