#include "src/graph/community.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace digg::graph {
namespace {

// Two mutually-connected cliques of 5 joined by a single bridge edge.
Digraph two_cliques() {
  DigraphBuilder b;
  auto clique = [&](NodeId lo, NodeId hi) {
    for (NodeId u = lo; u <= hi; ++u)
      for (NodeId v = lo; v <= hi; ++v)
        if (u != v) b.add_follow(u, v);
  };
  clique(0, 4);
  clique(5, 9);
  b.add_follow(4, 5);
  return b.build();
}

TEST(LabelPropagation, SeparatesTwoCliques) {
  stats::Rng rng(1);
  const auto labels = label_propagation(two_cliques(), rng);
  for (NodeId u = 1; u <= 4; ++u) EXPECT_EQ(labels[u], labels[0]);
  for (NodeId u = 6; u <= 9; ++u) EXPECT_EQ(labels[u], labels[5]);
  EXPECT_NE(labels[0], labels[5]);
  EXPECT_EQ(community_count(labels), 2u);
}

TEST(LabelPropagation, LabelsDenselyNumbered) {
  stats::Rng rng(2);
  const auto labels = label_propagation(two_cliques(), rng);
  for (std::size_t l : labels) EXPECT_LT(l, community_count(labels));
}

TEST(LabelPropagation, IsolatedNodesKeepOwnLabels) {
  stats::Rng rng(3);
  const auto labels = label_propagation(DigraphBuilder(4).build(), rng);
  EXPECT_EQ(community_count(labels), 4u);
}

TEST(Modularity, GoodPartitionBeatsTrivialPartition) {
  const Digraph g = two_cliques();
  std::vector<std::size_t> good(10, 0);
  for (NodeId u = 5; u <= 9; ++u) good[u] = 1;
  const std::vector<std::size_t> trivial(10, 0);
  EXPECT_GT(modularity(g, good), 0.3);
  EXPECT_NEAR(modularity(g, trivial), 0.0, 1e-12);
}

TEST(Modularity, RandomPartitionNearZero) {
  const Digraph g = two_cliques();
  std::vector<std::size_t> alternating(10);
  for (std::size_t u = 0; u < 10; ++u) alternating[u] = u % 2;
  EXPECT_LT(modularity(g, alternating), 0.1);
}

TEST(Modularity, SizeMismatchThrows) {
  EXPECT_THROW(modularity(two_cliques(), {0, 1}), std::invalid_argument);
}

TEST(Modularity, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(modularity(DigraphBuilder(3).build(), {0, 1, 2}), 0.0);
}

TEST(LabelPropagationOnPlantedPartition, RecoversStrongCommunities) {
  stats::Rng rng(7);
  PlantedPartitionParams params;
  params.node_count = 200;
  params.communities = 2;
  params.p_in = 0.2;
  params.p_out = 0.002;
  const Digraph g = planted_partition(params, rng);
  const auto detected = label_propagation(g, rng);
  const auto truth = planted_communities(params);
  EXPECT_GT(rand_index(detected, truth), 0.9);
}

TEST(RandIndex, IdenticalPartitionsScoreOne) {
  const std::vector<std::size_t> p = {0, 0, 1, 1, 2};
  EXPECT_DOUBLE_EQ(rand_index(p, p), 1.0);
}

TEST(RandIndex, RelabeledPartitionStillScoresOne) {
  EXPECT_DOUBLE_EQ(rand_index({0, 0, 1, 1}, {5, 5, 9, 9}), 1.0);
}

TEST(RandIndex, DisagreementLowersScore) {
  const double r = rand_index({0, 0, 1, 1}, {0, 1, 0, 1});
  EXPECT_LT(r, 0.5);
}

TEST(RandIndex, SizeMismatchThrows) {
  EXPECT_THROW(rand_index({0, 1}, {0}), std::invalid_argument);
}

TEST(CommunityCount, EmptyIsZero) {
  EXPECT_EQ(community_count({}), 0u);
}

}  // namespace
}  // namespace digg::graph
