#include "src/stats/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/summary.h"

namespace digg::stats {
namespace {

TEST(BootstrapMeanCi, CoversTrueMeanOfNormalSample) {
  Rng rng(1);
  std::vector<double> data;
  for (int i = 0; i < 400; ++i) data.push_back(rng.normal(10.0, 2.0));
  Rng boot(2);
  const Interval ci = bootstrap_mean_ci(data, 1000, 0.95, boot);
  EXPECT_TRUE(ci.contains(10.0));
  EXPECT_NEAR(ci.point, mean(data), 1e-12);
  EXPECT_LT(ci.hi - ci.lo, 1.0);  // n=400, sd=2 -> CI width ~0.4
  EXPECT_GT(ci.hi, ci.lo);
}

TEST(BootstrapMeanCi, WidthShrinksWithSampleSize) {
  Rng rng(3);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 50; ++i) small.push_back(rng.normal(0.0, 1.0));
  for (int i = 0; i < 5000; ++i) large.push_back(rng.normal(0.0, 1.0));
  Rng b1(4);
  Rng b2(4);
  const Interval ci_small = bootstrap_mean_ci(small, 500, 0.95, b1);
  const Interval ci_large = bootstrap_mean_ci(large, 500, 0.95, b2);
  EXPECT_GT(ci_small.hi - ci_small.lo, 3.0 * (ci_large.hi - ci_large.lo));
}

TEST(BootstrapCi, CustomStatisticMedian) {
  Rng boot(5);
  std::vector<double> data = {1, 2, 3, 4, 5, 6, 7, 8, 9, 100};
  const Interval ci = bootstrap_ci(
      data, [](const std::vector<double>& v) { return quantile(v, 0.5); },
      500, 0.9, boot);
  EXPECT_TRUE(ci.contains(5.5));
  EXPECT_LT(ci.hi, 50.0);  // median robust to the outlier
}

TEST(BootstrapCi, DeterministicGivenSeed) {
  std::vector<double> data = {1, 2, 3, 4, 5};
  Rng a(9);
  Rng b(9);
  const Interval ca = bootstrap_mean_ci(data, 200, 0.95, a);
  const Interval cb = bootstrap_mean_ci(data, 200, 0.95, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(BootstrapCi, RejectsBadArguments) {
  Rng rng(1);
  const Statistic m = [](const std::vector<double>& v) { return mean(v); };
  EXPECT_THROW(bootstrap_ci({}, m, 100, 0.95, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci({1.0}, m, 5, 0.95, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci({1.0}, m, 100, 1.0, rng), std::invalid_argument);
  EXPECT_THROW(bootstrap_ci({1.0}, m, 100, 0.0, rng), std::invalid_argument);
}

TEST(BootstrapProportionCi, MatchesBinomialIntuition) {
  std::vector<bool> outcomes(200, false);
  for (int i = 0; i < 60; ++i) outcomes[i] = true;  // 30%
  Rng rng(7);
  const Interval ci = bootstrap_proportion_ci(outcomes, 1000, 0.95, rng);
  EXPECT_NEAR(ci.point, 0.3, 1e-12);
  EXPECT_TRUE(ci.contains(0.3));
  // Normal-approx half-width ~ 1.96*sqrt(0.3*0.7/200) ~ 0.064.
  EXPECT_NEAR(ci.hi - ci.lo, 0.127, 0.04);
}

TEST(BootstrapPairedDiff, DetectsClearGap) {
  // Condition a succeeds 90%, condition b 40%, over the same 100 items.
  PairedSample sample;
  Rng rng(11);
  for (int i = 0; i < 100; ++i) {
    sample.a.push_back(rng.bernoulli(0.9) ? 1.0 : 0.0);
    sample.b.push_back(rng.bernoulli(0.4) ? 1.0 : 0.0);
  }
  Rng boot(12);
  const Interval gap = bootstrap_paired_diff_ci(
      sample, [](const std::vector<double>& v) { return mean(v); }, 1000,
      0.95, boot);
  EXPECT_GT(gap.lo, 0.2);  // clearly positive
  EXPECT_NEAR(gap.point, 0.5, 0.15);
}

TEST(BootstrapPairedDiff, NansSkippedPerCondition) {
  PairedSample sample;
  // Item 0 counted only under a; item 1 only under b; item 2 under both.
  sample.a = {1.0, std::nan(""), 1.0};
  sample.b = {std::nan(""), 0.0, 0.0};
  Rng boot(13);
  const Interval gap = bootstrap_paired_diff_ci(
      sample, [](const std::vector<double>& v) { return mean(v); }, 100, 0.9,
      boot);
  EXPECT_DOUBLE_EQ(gap.point, 1.0);  // a: mean{1,1}=1; b: mean{0,0}=0
}

TEST(BootstrapPairedDiff, RejectsSizeMismatch) {
  PairedSample sample;
  sample.a = {1.0};
  sample.b = {1.0, 2.0};
  Rng rng(1);
  EXPECT_THROW(bootstrap_paired_diff_ci(
                   sample,
                   [](const std::vector<double>& v) { return mean(v); }, 100,
                   0.9, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace digg::stats
