#include "src/digg/friends_interface.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"
#include "src/stats/rng.h"

namespace digg::platform {
namespace {

// fans(0) = {1, 2}; fans(1) = {3}; fans(2) = {3}; 3 has no fans.
graph::Digraph small_network() {
  graph::DigraphBuilder b(5);
  b.add_fan(0, 1);
  b.add_fan(0, 2);
  b.add_fan(1, 3);
  b.add_fan(2, 3);
  return b.build();
}

TEST(VisibilitySet, SubmitterFansBecomeWatchers) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(0);
  EXPECT_EQ(vis.influence(), 2u);
  EXPECT_TRUE(vis.can_see(1));
  EXPECT_TRUE(vis.can_see(2));
  EXPECT_FALSE(vis.can_see(3));
  EXPECT_TRUE(vis.has_voted(0));
}

TEST(VisibilitySet, VotersLeaveWatcherSet) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(0);
  vis.add_voter(1);  // watcher votes: leaves set, brings fan 3
  EXPECT_FALSE(vis.can_see(1));
  EXPECT_TRUE(vis.can_see(3));
  EXPECT_EQ(vis.influence(), 2u);  // {2, 3}
  EXPECT_EQ(vis.voter_count(), 2u);
}

TEST(VisibilitySet, PriorVotersNeverReenter) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(3);  // 3 votes first (out of network)
  vis.add_voter(1);  // 1's fans = {3}, but 3 already voted
  EXPECT_FALSE(vis.can_see(3));
  EXPECT_EQ(vis.influence(), 0u);
}

TEST(VisibilitySet, DuplicateVoterThrows) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(0);
  EXPECT_THROW(vis.add_voter(0), std::invalid_argument);
}

TEST(VisibilitySet, VoterOutsideNetworkTolerated) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(1000);  // unknown to the graph: no fans to add
  EXPECT_EQ(vis.influence(), 0u);
  EXPECT_TRUE(vis.has_voted(1000));
}

TEST(VisibilitySet, SampleWatcherReturnsLiveWatcher) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(0);
  stats::Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto w = vis.sample_watcher(rng);
    ASSERT_TRUE(w.has_value());
    EXPECT_TRUE(vis.can_see(*w));
  }
}

TEST(VisibilitySet, SampleWatcherEmptyIsNullopt) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  stats::Rng rng(1);
  EXPECT_FALSE(vis.sample_watcher(rng).has_value());
}

TEST(VisibilitySet, SampleWatcherSkipsStaleEntries) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(0);   // watchers {1,2}
  vis.add_voter(1);   // 1 votes; watcher pool still holds 1 (stale)
  stats::Rng rng(2);
  for (int i = 0; i < 50; ++i) {
    const auto w = vis.sample_watcher(rng);
    ASSERT_TRUE(w.has_value());
    EXPECT_NE(*w, 1u);
  }
}

TEST(VisibilitySet, ExposureLogUniqueEntries) {
  const graph::Digraph net = small_network();
  VisibilitySet vis(net);
  vis.add_voter(1);  // exposes 3
  vis.add_voter(2);  // would expose 3 again
  const auto& log = vis.exposure_log();
  EXPECT_EQ(std::count(log.begin(), log.end(), 3u), 1);
}

TEST(StoryInfluence, MatchesManualUnion) {
  const graph::Digraph net = small_network();
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  // After submitter: fans {1,2}. After voter 1: 1 leaves, 3 joins => {2,3}.
  EXPECT_EQ(story_influence(s, net, 1), 2u);
  EXPECT_EQ(story_influence(s, net, 2), 2u);
}

TEST(StoryInfluence, CountBeyondVotesSaturates) {
  const graph::Digraph net = small_network();
  const Story s = make_story(0, 0, 0.0, 0.5);
  EXPECT_EQ(story_influence(s, net, 100), story_influence(s, net, 1));
}

TEST(FriendsActivity, SubmissionsAndDiggsVisible) {
  // User 3 watches 1 and 2 (friends(3) = {1,2}).
  graph::DigraphBuilder b(5);
  b.add_follow(3, 1);
  b.add_follow(3, 2);
  const graph::Digraph net = b.build();

  std::vector<Story> stories;
  stories.push_back(make_story(0, 1, /*submitted_at=*/0.0, 0.5));  // friend 1
  stories.push_back(make_story(1, 4, 10.0, 0.5));  // stranger submits
  add_vote(stories[1], 2, 20.0);                   // friend 2 diggs it

  const FriendsActivity act = friends_activity(3, stories, net, /*now=*/30.0);
  ASSERT_EQ(act.submitted_by_friends.size(), 1u);
  EXPECT_EQ(act.submitted_by_friends[0], 0u);
  ASSERT_EQ(act.dugg_by_friends.size(), 1u);
  EXPECT_EQ(act.dugg_by_friends[0], 1u);
}

TEST(FriendsActivity, LookbackWindowApplies) {
  graph::DigraphBuilder b(4);
  b.add_follow(3, 1);
  const graph::Digraph net = b.build();
  std::vector<Story> stories;
  stories.push_back(make_story(0, 1, 0.0, 0.5));
  // 49 hours later, the submission is outside the 48h window.
  const FriendsActivity act =
      friends_activity(3, stories, net, /*now=*/49.0 * 60.0);
  EXPECT_TRUE(act.submitted_by_friends.empty());
}

TEST(FriendsActivity, FutureVotesInvisible) {
  graph::DigraphBuilder b(4);
  b.add_follow(3, 1);
  const graph::Digraph net = b.build();
  std::vector<Story> stories;
  stories.push_back(make_story(0, 2, 0.0, 0.5));
  add_vote(stories[0], 1, 100.0);  // friend diggs at t=100
  const FriendsActivity before = friends_activity(3, stories, net, 50.0);
  EXPECT_TRUE(before.dugg_by_friends.empty());
  const FriendsActivity after = friends_activity(3, stories, net, 150.0);
  EXPECT_EQ(after.dugg_by_friends.size(), 1u);
}

TEST(FriendsActivity, UnknownUserSeesNothing) {
  const graph::Digraph net = small_network();
  std::vector<Story> stories;
  stories.push_back(make_story(0, 0, 0.0, 0.5));
  const FriendsActivity act = friends_activity(1000, stories, net, 10.0);
  EXPECT_TRUE(act.submitted_by_friends.empty());
  EXPECT_TRUE(act.dugg_by_friends.empty());
}

}  // namespace
}  // namespace digg::platform
