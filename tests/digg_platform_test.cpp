#include "src/digg/platform.h"

#include <gtest/gtest.h>

namespace digg::platform {
namespace {

Platform make_platform(std::size_t users = 64, std::size_t threshold = 3) {
  graph::DigraphBuilder b(users);
  // Users 1..5 are fans of user 0.
  for (UserId fan = 1; fan <= 5; ++fan) b.add_fan(0, fan);
  return Platform(b.build(), std::vector<UserProfile>(users),
                  std::make_unique<VoteCountPolicy>(threshold));
}

TEST(Platform, SubmitPlacesStoryUpcoming) {
  Platform p = make_platform();
  const StoryId id = p.submit(0, 0.5, 10.0);
  EXPECT_EQ(p.story_count(), 1u);
  EXPECT_TRUE(p.upcoming().contains(id));
  EXPECT_FALSE(p.front_page().contains(id));
  EXPECT_EQ(p.story(id).vote_count(), 1u);
  EXPECT_EQ(p.visibility(id).influence(), 5u);  // 0's five fans
}

TEST(Platform, VoteTriggersPromotionAtThreshold) {
  Platform p = make_platform(64, 3);
  const StoryId id = p.submit(0, 0.5, 0.0);
  EXPECT_FALSE(p.vote(id, 10, 1.0));
  EXPECT_TRUE(p.vote(id, 11, 2.0));  // third vote
  EXPECT_TRUE(p.story(id).promoted());
  EXPECT_DOUBLE_EQ(*p.story(id).promoted_at, 2.0);
  EXPECT_TRUE(p.front_page().contains(id));
  EXPECT_FALSE(p.upcoming().contains(id));
  EXPECT_EQ(p.story(id).phase, StoryPhase::kFrontPage);
}

TEST(Platform, VotesAfterPromotionDoNotRePromote) {
  Platform p = make_platform(64, 2);
  const StoryId id = p.submit(0, 0.5, 0.0);
  EXPECT_TRUE(p.vote(id, 10, 1.0));
  EXPECT_FALSE(p.vote(id, 11, 2.0));
  EXPECT_DOUBLE_EQ(*p.story(id).promoted_at, 1.0);
}

TEST(Platform, DuplicateVoteThrows) {
  Platform p = make_platform();
  const StoryId id = p.submit(0, 0.5, 0.0);
  p.vote(id, 10, 1.0);
  EXPECT_THROW(p.vote(id, 10, 2.0), std::invalid_argument);
  EXPECT_THROW(p.vote(id, 0, 2.0), std::invalid_argument);  // submitter
}

TEST(Platform, UnknownIdsThrow) {
  Platform p = make_platform();
  EXPECT_THROW(p.submit(1000, 0.5, 0.0), std::out_of_range);
  EXPECT_THROW(p.vote(5, 1, 0.0), std::out_of_range);
  const StoryId id = p.submit(0, 0.5, 0.0);
  EXPECT_THROW(p.vote(id, 1000, 0.0), std::out_of_range);
  EXPECT_THROW(p.story(99), std::out_of_range);
  EXPECT_THROW(p.visibility(99), std::out_of_range);
}

TEST(Platform, ExpireStaleRemovesOldUpcoming) {
  Platform p = make_platform();
  const StoryId oldie = p.submit(0, 0.5, 0.0);
  const StoryId fresh = p.submit(1, 0.5, 2000.0);
  p.expire_stale(0.5 + kMinutesPerDay + 100.0);
  EXPECT_EQ(p.story(oldie).phase, StoryPhase::kExpired);
  EXPECT_FALSE(p.upcoming().contains(oldie));
  EXPECT_TRUE(p.upcoming().contains(fresh));
}

TEST(Platform, VotingOnExpiredStoryThrows) {
  Platform p = make_platform();
  const StoryId id = p.submit(0, 0.5, 0.0);
  p.expire_stale(kMinutesPerDay * 2.0);
  EXPECT_THROW(p.vote(id, 10, kMinutesPerDay * 2.0), std::logic_error);
}

TEST(Platform, PromotedStoriesDoNotExpire) {
  Platform p = make_platform(64, 2);
  const StoryId id = p.submit(0, 0.5, 0.0);
  p.vote(id, 10, 1.0);
  p.expire_stale(kMinutesPerDay * 3.0);
  EXPECT_EQ(p.story(id).phase, StoryPhase::kFrontPage);
}

TEST(Platform, VisibilityTracksVotes) {
  Platform p = make_platform();
  const StoryId id = p.submit(0, 0.5, 0.0);
  const std::size_t before = p.visibility(id).influence();
  p.vote(id, 1, 1.0);  // fan 1 votes; had no fans of their own
  EXPECT_EQ(p.visibility(id).influence(), before - 1);
}

TEST(Platform, RejectsNullPolicyAndSizeMismatch) {
  graph::DigraphBuilder b(4);
  EXPECT_THROW(
      Platform(b.build(), std::vector<UserProfile>(4), nullptr),
      std::invalid_argument);
  EXPECT_THROW(Platform(b.build(), std::vector<UserProfile>(3),
                        std::make_unique<VoteCountPolicy>(3)),
               std::invalid_argument);
}

TEST(Platform, NewestSubmissionsOnTopOfQueue) {
  Platform p = make_platform();
  const StoryId a = p.submit(0, 0.5, 0.0);
  const StoryId bid = p.submit(1, 0.5, 1.0);
  EXPECT_EQ(p.upcoming().position(bid), 0u);
  EXPECT_EQ(p.upcoming().position(a), 1u);
}

}  // namespace
}  // namespace digg::platform
