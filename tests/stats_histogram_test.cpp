#include "src/stats/histogram.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace digg::stats {
namespace {

TEST(LinearHistogram, BinsPartitionRange) {
  LinearHistogram h(0.0, 100.0, 10);
  EXPECT_EQ(h.bin_count(), 10u);
  EXPECT_DOUBLE_EQ(h.bin_width(), 10.0);
  EXPECT_DOUBLE_EQ(h.bin(0).lo, 0.0);
  EXPECT_DOUBLE_EQ(h.bin(0).hi, 10.0);
  EXPECT_DOUBLE_EQ(h.bin(9).hi, 100.0);
}

TEST(LinearHistogram, CountsLandInCorrectBins) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.9);
  h.add(2.0);  // boundary -> bin 1
  h.add(9.99);
  EXPECT_EQ(h.bin(0).count, 2u);
  EXPECT_EQ(h.bin(1).count, 1u);
  EXPECT_EQ(h.bin(4).count, 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(LinearHistogram, OutOfRangeValuesClampToEdges) {
  LinearHistogram h(0.0, 10.0, 5);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.bin(0).count, 1u);
  EXPECT_EQ(h.bin(4).count, 1u);
  EXPECT_EQ(h.total(), 2u);
}

TEST(LinearHistogram, AddManyMatchesRepeatedAdd) {
  LinearHistogram a(0.0, 10.0, 5);
  LinearHistogram b(0.0, 10.0, 5);
  const std::vector<double> values = {1.0, 2.0, 3.0, 7.5, 9.0};
  a.add_many(values);
  for (double v : values) b.add(v);
  for (std::size_t i = 0; i < 5; ++i)
    EXPECT_EQ(a.bin(i).count, b.bin(i).count);
}

TEST(LinearHistogram, FractionBelowInterpolates) {
  LinearHistogram h(0.0, 10.0, 10);
  for (int i = 0; i < 10; ++i) h.add(static_cast<double>(i) + 0.5);
  EXPECT_NEAR(h.fraction_below(5.0), 0.5, 1e-9);
  EXPECT_NEAR(h.fraction_below(0.0), 0.0, 1e-9);
  EXPECT_NEAR(h.fraction_below(100.0), 1.0, 1e-9);
}

TEST(LinearHistogram, FractionBelowEmptyIsZero) {
  LinearHistogram h(0.0, 10.0, 10);
  EXPECT_DOUBLE_EQ(h.fraction_below(5.0), 0.0);
}

TEST(LinearHistogram, RejectsBadConstruction) {
  EXPECT_THROW(LinearHistogram(5.0, 5.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(5.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(LinearHistogram(0.0, 10.0, 0), std::invalid_argument);
}

TEST(LinearHistogram, BinIndexOutOfRangeThrows) {
  LinearHistogram h(0.0, 10.0, 2);
  EXPECT_THROW(h.bin(2), std::out_of_range);
}

TEST(LogHistogram, PowersOfTwoBinning) {
  LogHistogram h(2.0);
  h.add(1);   // [1,2) -> bin 0
  h.add(2);   // [2,4) -> bin 1
  h.add(3);   // bin 1
  h.add(4);   // bin 2
  h.add(15);  // bin 3
  const auto bins = h.bins();
  ASSERT_EQ(bins.size(), 4u);
  EXPECT_EQ(bins[0].count, 1u);
  EXPECT_EQ(bins[1].count, 2u);
  EXPECT_EQ(bins[2].count, 1u);
  EXPECT_EQ(bins[3].count, 1u);
}

TEST(LogHistogram, ZerosCountedSeparately) {
  LogHistogram h;
  h.add(0);
  h.add(0);
  h.add(5);
  EXPECT_EQ(h.zeros(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(LogHistogram, DensitiesDivideByWidth) {
  LogHistogram h(2.0);
  h.add(2);
  h.add(3);  // two counts in [2,4), width 2
  const auto d = h.densities();
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d[1], 1.0);
}

TEST(LogHistogram, RejectsBadBase) {
  EXPECT_THROW(LogHistogram(1.0), std::invalid_argument);
  EXPECT_THROW(LogHistogram(0.5), std::invalid_argument);
}

TEST(FrequencyCounter, CountsExactValues) {
  FrequencyCounter c;
  c.add(3);
  c.add(3);
  c.add(-1);
  EXPECT_EQ(c.count(3), 2u);
  EXPECT_EQ(c.count(-1), 1u);
  EXPECT_EQ(c.count(0), 0u);
  EXPECT_EQ(c.total(), 3u);
}

TEST(FrequencyCounter, MinMaxAndItemsSorted) {
  FrequencyCounter c;
  c.add(5);
  c.add(-2);
  c.add(9);
  EXPECT_EQ(c.min_value(), -2);
  EXPECT_EQ(c.max_value(), 9);
  const auto items = c.items();
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items.front().first, -2);
  EXPECT_EQ(items.back().first, 9);
}

TEST(FrequencyCounter, CountAtLeast) {
  FrequencyCounter c;
  for (std::int64_t v : {1, 2, 2, 5, 10}) c.add(v);
  EXPECT_EQ(c.count_at_least(2), 4u);
  EXPECT_EQ(c.count_at_least(6), 1u);
  EXPECT_EQ(c.count_at_least(11), 0u);
  EXPECT_EQ(c.count_at_least(-100), 5u);
}

TEST(FrequencyCounter, EmptyThrowsOnMinMax) {
  FrequencyCounter c;
  EXPECT_TRUE(c.empty());
  EXPECT_THROW(c.min_value(), std::logic_error);
  EXPECT_THROW(c.max_value(), std::logic_error);
}

}  // namespace
}  // namespace digg::stats
