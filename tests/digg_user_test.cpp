#include "src/digg/user.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::platform {
namespace {

TEST(GeneratePopulation, SizesAndPositivity) {
  stats::Rng rng(1);
  PopulationParams params;
  params.user_count = 500;
  const auto users = generate_population(params, rng);
  ASSERT_EQ(users.size(), 500u);
  for (const UserProfile& u : users) {
    EXPECT_GT(u.activity_rate, 0.0);
    EXPECT_GE(u.submission_rate, 0.0);
    EXPECT_GT(u.friends_interface_weight, 0.0);
    EXPECT_GT(u.front_page_weight, 0.0);
  }
}

TEST(GeneratePopulation, ActivityDecreasesWithRank) {
  stats::Rng rng(2);
  PopulationParams params;
  params.user_count = 2000;
  const auto users = generate_population(params, rng);
  double head = 0.0;
  double tail = 0.0;
  for (std::size_t u = 0; u < 100; ++u) head += users[u].activity_rate;
  for (std::size_t u = 1900; u < 2000; ++u) tail += users[u].activity_rate;
  EXPECT_GT(head, 10.0 * tail);
}

TEST(GeneratePopulation, HeavyUsersFavorFriendsInterface) {
  stats::Rng rng(3);
  PopulationParams params;
  params.user_count = 1000;
  const auto users = generate_population(params, rng);
  EXPECT_GT(users[0].friends_interface_weight,
            users[999].friends_interface_weight);
}

TEST(GeneratePopulation, RejectsEmptyPopulation) {
  stats::Rng rng(1);
  PopulationParams params;
  params.user_count = 0;
  EXPECT_THROW(generate_population(params, rng), std::invalid_argument);
}

TEST(PromotedSubmissionCounts, CountsOnlyPromoted) {
  std::vector<Story> stories;
  Story a = make_story(0, 3, 0.0, 0.5);
  a.promoted_at = 10.0;
  Story b = make_story(1, 3, 0.0, 0.5);  // not promoted
  Story c = make_story(2, 4, 0.0, 0.5);
  c.promoted_at = 20.0;
  stories = {a, b, c};
  const auto counts = promoted_submission_counts(stories, 8);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(counts[4], 1u);
  EXPECT_EQ(counts[0], 0u);
}

TEST(TopUserRanking, SortsByReputationDescending) {
  const auto order = top_user_ranking({1, 5, 3});
  EXPECT_EQ(order, (std::vector<UserId>{1, 2, 0}));
}

TEST(TopUserRanking, TiebreakByScoreThenId) {
  const std::vector<std::uint32_t> rep = {2, 2, 2, 5};
  const std::vector<std::uint32_t> fans = {10, 30, 20, 0};
  const auto order = top_user_ranking(rep, fans);
  EXPECT_EQ(order, (std::vector<UserId>{3, 1, 2, 0}));
}

TEST(TopUserRanking, TiebreakSizeMismatchThrows) {
  EXPECT_THROW(top_user_ranking({1, 2}, {1}), std::invalid_argument);
}

TEST(TopShare, UniformCountsGiveProportionalShare) {
  const std::vector<std::uint32_t> counts(100, 5);
  EXPECT_NEAR(top_share(counts, 0.03), 0.03, 1e-9);
}

TEST(TopShare, ConcentratedCountsGiveLargeShare) {
  std::vector<std::uint32_t> counts(100, 1);
  counts[0] = 200;
  counts[1] = 100;
  counts[2] = 50;
  // top 3% = 3 users with 350 of 447 submissions.
  EXPECT_NEAR(top_share(counts, 0.03), 350.0 / 447.0, 1e-9);
}

TEST(TopShare, ZeroTotalIsZero) {
  EXPECT_DOUBLE_EQ(top_share(std::vector<std::uint32_t>(10, 0), 0.1), 0.0);
}

TEST(TopShare, RejectsBadFraction) {
  EXPECT_THROW(top_share({1, 2}, 0.0), std::invalid_argument);
  EXPECT_THROW(top_share({1, 2}, 1.5), std::invalid_argument);
}

TEST(TopShare, AtLeastOneUserInHead) {
  // fraction so small it rounds to zero users: still counts the top one.
  std::vector<std::uint32_t> counts(10, 1);
  counts[0] = 91;
  EXPECT_NEAR(top_share(counts, 0.01), 0.91, 1e-9);
}

}  // namespace
}  // namespace digg::platform
