#include "src/ml/validation.h"

#include <gtest/gtest.h>

#include "src/ml/c45.h"

namespace digg::ml {
namespace {

TEST(Confusion, CountsAndDerivedMetrics) {
  Confusion c;
  c.add(true, true);    // TP
  c.add(true, true);    // TP
  c.add(true, false);   // FN
  c.add(false, true);   // FP
  c.add(false, false);  // TN
  EXPECT_EQ(c.tp, 2u);
  EXPECT_EQ(c.fn, 1u);
  EXPECT_EQ(c.fp, 1u);
  EXPECT_EQ(c.tn, 1u);
  EXPECT_EQ(c.total(), 5u);
  EXPECT_EQ(c.correct(), 3u);
  EXPECT_EQ(c.errors(), 2u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.6);
  EXPECT_DOUBLE_EQ(c.precision(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.recall(), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(c.f1(), 2.0 / 3.0);
}

TEST(Confusion, ZeroDenominatorsGiveZero) {
  const Confusion c;
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.precision(), 0.0);
  EXPECT_DOUBLE_EQ(c.recall(), 0.0);
  EXPECT_DOUBLE_EQ(c.f1(), 0.0);
}

TEST(Confusion, ToStringUsesPaperNotation) {
  Confusion c;
  c.tp = 4;
  c.tn = 32;
  c.fp = 11;
  c.fn = 1;
  EXPECT_EQ(c.to_string(), "TP=4 TN=32 FP=11 FN=1");
}

Dataset binary_dataset(std::size_t n0, std::size_t n1) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  for (std::size_t i = 0; i < n0; ++i)
    d.add({static_cast<double>(i)}, 0);
  for (std::size_t i = 0; i < n1; ++i)
    d.add({100.0 + static_cast<double>(i)}, 1);
  return d;
}

TEST(Evaluate, PerfectClassifier) {
  const Dataset d = binary_dataset(5, 5);
  const Confusion c = evaluate(
      [](const std::vector<double>& row) { return row[0] >= 100.0 ? 1u : 0u; },
      d);
  EXPECT_EQ(c.correct(), 10u);
  EXPECT_EQ(c.errors(), 0u);
}

TEST(Evaluate, AllPositiveClassifier) {
  const Dataset d = binary_dataset(6, 4);
  const Confusion c =
      evaluate([](const std::vector<double>&) { return 1u; }, d);
  EXPECT_EQ(c.tp, 4u);
  EXPECT_EQ(c.fp, 6u);
  EXPECT_EQ(c.tn, 0u);
}

TEST(Evaluate, RejectsNonBinary) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"a", "b", "c"});
  d.add({1.0}, 0);
  EXPECT_THROW(evaluate([](const std::vector<double>&) { return 0u; }, d),
               std::invalid_argument);
}

TEST(StratifiedFolds, PreservesClassProportions) {
  stats::Rng rng(1);
  const Dataset d = binary_dataset(40, 20);
  const auto folds = stratified_folds(d, 4, rng);
  std::vector<std::size_t> pos_per_fold(4, 0);
  std::vector<std::size_t> total_per_fold(4, 0);
  for (std::size_t i = 0; i < d.size(); ++i) {
    ++total_per_fold[folds[i]];
    if (d.label(i) == 1) ++pos_per_fold[folds[i]];
  }
  for (std::size_t f = 0; f < 4; ++f) {
    EXPECT_EQ(total_per_fold[f], 15u);
    EXPECT_EQ(pos_per_fold[f], 5u);
  }
}

TEST(StratifiedFolds, RejectsTooManyFolds) {
  stats::Rng rng(1);
  const Dataset d = binary_dataset(10, 2);
  EXPECT_THROW(stratified_folds(d, 3, rng), std::invalid_argument);
  EXPECT_THROW(stratified_folds(d, 1, rng), std::invalid_argument);
}

TEST(CrossValidate, PerfectlySeparableDataScoresHigh) {
  stats::Rng rng(2);
  const Dataset d = binary_dataset(30, 30);
  const Trainer trainer = [](const Dataset& train) {
    const DecisionTree tree = DecisionTree::train(train);
    return Classifier(
        [tree](const std::vector<double>& row) { return tree.predict(row); });
  };
  const CrossValidationResult result = cross_validate(trainer, d, 10, rng);
  EXPECT_EQ(result.per_fold.size(), 10u);
  EXPECT_EQ(result.pooled.total(), 60u);
  EXPECT_GT(result.pooled.accuracy(), 0.95);
  EXPECT_GT(result.mean_accuracy(), 0.95);
}

TEST(CrossValidate, PooledCountsSumAcrossFolds) {
  stats::Rng rng(3);
  const Dataset d = binary_dataset(20, 20);
  const CrossValidationResult result =
      cross_validate([](const Dataset&) {
        return Classifier([](const std::vector<double>&) { return 1u; });
      }, d, 5, rng);
  EXPECT_EQ(result.pooled.tp, 20u);
  EXPECT_EQ(result.pooled.fp, 20u);
  std::size_t fold_total = 0;
  for (const Confusion& c : result.per_fold) fold_total += c.total();
  EXPECT_EQ(fold_total, result.pooled.total());
}

TEST(CrossValidationResult, MeanAccuracyOfEmptyIsZero) {
  EXPECT_DOUBLE_EQ(CrossValidationResult{}.mean_accuracy(), 0.0);
}

}  // namespace
}  // namespace digg::ml
