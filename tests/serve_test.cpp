#include "src/serve/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/features.h"
#include "src/core/predictor.h"
#include "src/data/synthetic.h"
#include "src/runtime/parallel.h"
#include "src/serve/client.h"
#include "src/serve/mpsc_queue.h"
#include "src/serve/protocol.h"
#include "src/stream/checkpoint.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace digg::serve {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture data: a corpus small enough to generate in well under a
// second but large enough that stories cross the v10/v20 checkpoints and
// both label classes appear on the front page.

const data::SyntheticCorpus& test_corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.user_count = 20000;
    params.story_count = 200;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

const core::InterestingnessPredictor& test_predictor() {
  static const core::InterestingnessPredictor p = [] {
    const data::Corpus& corpus = test_corpus().corpus;
    return core::InterestingnessPredictor::train(
        core::extract_features(corpus.front_page, corpus.network));
  }();
  return p;
}

stream::StreamParams test_stream_params() {
  stream::StreamParams sp;
  sp.predictor = &test_predictor();
  sp.bayes.enabled = true;
  return sp;
}

/// The test load: (story, events-to-send) pairs in a fixed story-major
/// order, capped per story so the suite stays fast.
struct LoadItem {
  const data::Story* story;
  std::size_t events;
};

std::vector<LoadItem> test_load(std::size_t max_stories,
                                std::size_t max_votes) {
  const data::Corpus& corpus = test_corpus().corpus;
  std::vector<LoadItem> load;
  for (const auto* list : {&corpus.upcoming, &corpus.front_page}) {
    for (const data::Story& s : *list) {
      if (load.size() >= max_stories) break;
      const std::size_t events = std::min(s.vote_count(), max_votes);
      if (events > 0) load.push_back({&s, events});
    }
  }
  return load;
}

void encode_load(const std::vector<LoadItem>& load, std::size_t begin_event,
                 std::size_t end_event, std::vector<char>& out) {
  // Events are numbered story-major: story 0's submit+votes, then story
  // 1's, ... — slicing [begin, end) lets kill/resume tests cut mid-story.
  std::size_t n = 0;
  for (const LoadItem& l : load) {
    const data::Story& s = *l.story;
    for (std::size_t k = 0; k < l.events; ++k, ++n) {
      if (n < begin_event || n >= end_event) continue;
      if (k == 0)
        encode(SubmitMsg{s.id, s.voters()[0], s.times()[0]}, out);
      else
        encode(VoteMsg{s.id, s.voters()[k], s.times()[k]}, out);
    }
  }
}

std::size_t total_events(const std::vector<LoadItem>& load) {
  std::size_t n = 0;
  for (const LoadItem& l : load) n += l.events;
  return n;
}

/// A single-threaded live engine fed the same load — the oracle every
/// server reply is compared against.
stream::StreamEngine make_oracle(const std::vector<LoadItem>& load) {
  stream::StreamEngine oracle(test_corpus().corpus.network,
                              test_stream_params());
  for (const LoadItem& l : load) {
    const data::Story& s = *l.story;
    const auto slot = oracle.live_submit(s.id, s.voters()[0], s.times()[0]);
    for (std::size_t k = 1; k < l.events; ++k)
      oracle.live_vote(slot, s.voters()[k], s.times()[k]);
    oracle.note_events_applied(l.events);
  }
  return oracle;
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("digg_serve_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// Protocol: round-trips.

TEST(ServeProtocolTest, RoundTripsEveryMessageType) {
  std::vector<Message> msgs = {
      VoteMsg{7, 1234, 56.5},
      SubmitMsg{8, 99, 1.25},
      QueryStateMsg{42},
      QueryPredictMsg{43},
      SyncMsg{0xdeadbeef},
      StateReplyMsg{7, 1, 1000, 55, {3, 9, 17}, 1, 321.75},
      PredictReplyMsg{7, 1, 1, 1, 0, 1, 812.5},
      SyncReplyMsg{0xdeadbeef},
      ErrorMsg{ErrorCode::kUnknownStory, 42},
  };
  std::vector<char> wire;
  for (const Message& m : msgs) encode(m, wire);

  FrameDecoder decoder;
  decoder.feed(wire.data(), wire.size());
  std::vector<Message> out;
  Message m;
  while (decoder.next(m)) out.push_back(m);
  ASSERT_EQ(out.size(), msgs.size());

  EXPECT_EQ(std::get<VoteMsg>(out[0]).story_id, 7u);
  EXPECT_EQ(std::get<VoteMsg>(out[0]).voter, 1234u);
  EXPECT_EQ(std::get<VoteMsg>(out[0]).time, 56.5);
  EXPECT_EQ(std::get<SubmitMsg>(out[1]).submitter, 99u);
  EXPECT_EQ(std::get<QueryStateMsg>(out[2]).story_id, 42u);
  EXPECT_EQ(std::get<QueryPredictMsg>(out[3]).story_id, 43u);
  EXPECT_EQ(std::get<SyncMsg>(out[4]).token, 0xdeadbeefu);
  const auto& state = std::get<StateReplyMsg>(out[5]);
  EXPECT_EQ(state.votes, 1000u);
  EXPECT_EQ(state.fans1, 55u);
  EXPECT_EQ(state.cascade, (std::vector<std::uint32_t>{3, 9, 17}));
  EXPECT_EQ(state.promoted, 1);
  EXPECT_EQ(state.promoted_time, 321.75);
  const auto& predict = std::get<PredictReplyMsg>(out[6]);
  EXPECT_EQ(predict.has_c45, 1);
  EXPECT_EQ(predict.c45_yes, 1);
  EXPECT_EQ(predict.bayes_expected_final, 812.5);
  EXPECT_EQ(std::get<SyncReplyMsg>(out[7]).token, 0xdeadbeefu);
  EXPECT_EQ(std::get<ErrorMsg>(out[8]).code, ErrorCode::kUnknownStory);
}

TEST(ServeProtocolTest, DecodesAcrossArbitraryFeedBoundaries) {
  std::vector<char> wire;
  for (int i = 0; i < 50; ++i)
    encode(VoteMsg{static_cast<std::uint32_t>(i), 7, 0.5 * i}, wire);
  FrameDecoder decoder;
  std::size_t decoded = 0;
  Message m;
  for (std::size_t i = 0; i < wire.size(); ++i) {  // one byte at a time
    decoder.feed(wire.data() + i, 1);
    while (decoder.next(m)) {
      EXPECT_EQ(std::get<VoteMsg>(m).story_id, decoded);
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 50u);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Protocol: the malformed-frame table the ASan leg runs — truncated,
// oversized, and garbage inputs must throw ProtocolError, never crash or
// over-read (this drives the exact decoder the server's read path uses).

TEST(ServeProtocolTest, MalformedFramesThrowWithoutCrashing) {
  struct Case {
    const char* name;
    std::vector<char> bytes;
  };
  auto frame = [](std::uint32_t len, const std::vector<char>& body) {
    std::vector<char> out(4 + body.size());
    std::memcpy(out.data(), &len, sizeof(len));
    std::copy(body.begin(), body.end(), out.begin() + 4);
    return out;
  };
  const std::vector<Case> cases = {
      {"zero length", frame(0, {})},
      {"length beyond cap", frame(kMaxFrameBytes + 1, {1})},
      {"length 0xffffffff", frame(0xffffffffu, {1})},
      {"unknown type 0", frame(1, {0})},
      {"unknown type 42", frame(1, {42})},
      {"unknown type 255", frame(1, {'\xff'})},
      {"vote body truncated", frame(5, {1, 7, 0, 0, 0})},
      {"vote body oversized", frame(18, {1, 7, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0,
                                         0, 0, 0, 0, 0, 9})},
      {"submit body empty", frame(1, {2})},
      {"sync body truncated", frame(3, {5, 1, 2})},
      {"state reply huge cascade count",
       frame(22, {16, 1, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0, 0, 5, 0, 0, 0,
                  '\xff', '\xff', '\xff', '\xff'})},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    FrameDecoder decoder;
    decoder.feed(c.bytes.data(), c.bytes.size());
    Message m;
    EXPECT_THROW(
        {
          while (decoder.next(m)) {
          }
        },
        ProtocolError);
    // Poisoned: every further use throws too.
    EXPECT_THROW((void)decoder.next(m), ProtocolError);
    EXPECT_THROW(decoder.feed(c.bytes.data(), 1), ProtocolError);
  }
}

TEST(ServeProtocolTest, GarbageStreamsNeverCrashTheDecoder) {
  // Deterministic pseudo-random buffers: every one either decodes into
  // messages or throws ProtocolError — nothing else may happen.
  std::uint64_t state = 0x2545f4914f6cdd1dull;
  auto next_byte = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<char>(state & 0xff);
  };
  std::size_t threw = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<char> garbage(64 + (round * 7) % 512);
    for (char& b : garbage) b = next_byte();
    FrameDecoder decoder;
    Message m;
    try {
      decoder.feed(garbage.data(), garbage.size());
      while (decoder.next(m)) {
      }
    } catch (const ProtocolError&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0u);  // random 4-byte lengths are overwhelmingly invalid
}

// ---------------------------------------------------------------------------
// MPSC ring queue.

TEST(MpscQueueTest, SingleThreadFifoAndFullBehavior) {
  MpscQueue<int> q(4);  // rounds to 4
  EXPECT_EQ(q.capacity(), 4u);
  EXPECT_THROW(MpscQueue<int>(0), std::invalid_argument);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.try_push(i));
  EXPECT_FALSE(q.try_push(99));  // full: never blocks, never overwrites
  int out[8];
  EXPECT_EQ(q.pop_batch(out, 8), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(out[i], i);
  EXPECT_EQ(q.pop_batch(out, 8), 0u);
  // Wraps across laps.
  for (int lap = 0; lap < 3; ++lap) {
    for (int i = 0; i < 3; ++i) EXPECT_TRUE(q.try_push(lap * 10 + i));
    EXPECT_EQ(q.pop_batch(out, 8), 3u);
    EXPECT_EQ(out[0], lap * 10);
    EXPECT_EQ(out[2], lap * 10 + 2);
  }
}

TEST(MpscQueueTest, MultiProducerDeliversEverythingOncePerProducerFifo) {
  // The TSan target: racing producers against the single consumer proves
  // the acquire/release publication protocol (a missing fence shows up as
  // a data race on the cell value; a lost CAS shows up as a dropped or
  // duplicated item).
  constexpr int kProducers = 4;
  constexpr std::uint32_t kPerProducer = 20000;
  MpscQueue<std::uint64_t> q(1024);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (std::uint32_t i = 0; i < kPerProducer; ++i) {
        const std::uint64_t item =
            (static_cast<std::uint64_t>(p) << 32) | i;
        while (!q.try_push(item)) std::this_thread::yield();
      }
    });
  }

  std::vector<std::uint32_t> next_expected(kProducers, 0);
  std::uint64_t received = 0;
  std::uint64_t buf[256];
  while (received < static_cast<std::uint64_t>(kProducers) * kPerProducer) {
    const auto n = q.pop_batch(buf, 256);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto p = static_cast<int>(buf[i] >> 32);
      const auto seq = static_cast<std::uint32_t>(buf[i]);
      ASSERT_LT(p, kProducers);
      ASSERT_EQ(seq, next_expected[p]) << "per-producer FIFO violated";
      ++next_expected[p];
    }
    received += n;
  }
  for (auto& t : producers) t.join();
  EXPECT_EQ(q.pop_batch(buf, 256), 0u);
}

// ---------------------------------------------------------------------------
// Live engine: equality with replay mode, and the shard-parallel contract.

TEST(ServeLiveEngineTest, LiveIngestMatchesReplayOutcomes) {
  const data::Corpus& corpus = test_corpus().corpus;
  const stream::EventStream es = stream::build_event_stream(corpus);

  stream::StreamEngine replay(es, corpus.network, test_stream_params());
  replay.run_all();
  stream::StreamResult expect = replay.result();

  stream::StreamEngine live(corpus.network, test_stream_params());
  for (const auto& story : es.stories) {
    const auto slot =
        live.live_submit(story.id, story.submitter, story.times()[0]);
    for (std::size_t k = 1; k < story.voters().size(); ++k)
      live.live_vote(slot, story.voters()[k], story.times()[k]);
    live.note_events_applied(story.voters().size());
  }
  stream::StreamResult got = live.result();

  ASSERT_EQ(got.stories.size(), expect.stories.size());
  EXPECT_EQ(got.events_applied, expect.events_applied);
  for (std::size_t i = 0; i < got.stories.size(); ++i) {
    SCOPED_TRACE("story slot " + std::to_string(i));
    const auto& a = got.stories[i];
    const auto& b = expect.stories[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.cascade, b.cascade);
    EXPECT_EQ(a.influence, b.influence);
    EXPECT_EQ(a.fans1, b.fans1);
    EXPECT_EQ(a.final_votes, b.final_votes);
    EXPECT_EQ(a.interesting, b.interesting);
    EXPECT_EQ(a.predicted_interesting, b.predicted_interesting);
    EXPECT_EQ(a.bayes_interesting, b.bayes_interesting);
    EXPECT_EQ(a.bayes_expected_final, b.bayes_expected_final);
    EXPECT_EQ(a.promoted_time, b.promoted_time);
  }
}

TEST(ServeLiveEngineTest, ShardParallelApplyMatchesSerial) {
  // The coordinator's throughput mode: submits serial, then each shard's
  // vote list applied via parallel_for — live_vote's shard-exclusivity
  // contract under the real thread pool (the TSan leg races it).
  const auto load = test_load(80, 60);

  stream::StreamEngine serial = make_oracle(load);

  stream::StreamEngine parallel(test_corpus().corpus.network,
                                test_stream_params());
  struct PendingVote {
    std::uint32_t slot;
    platform::UserId voter;
    platform::Minutes time;
  };
  constexpr auto kShards = stream::StreamEngine::kShardCount;
  std::vector<std::vector<PendingVote>> by_shard(kShards);
  std::uint64_t events = 0;
  for (const LoadItem& l : load) {
    const data::Story& s = *l.story;
    const auto slot =
        parallel.live_submit(s.id, s.voters()[0], s.times()[0]);
    for (std::size_t k = 1; k < l.events; ++k)
      by_shard[slot % kShards].push_back(
          {slot, s.voters()[k], s.times()[k]});
    events += l.events;
  }
  runtime::parallel_for(
      kShards,
      [&](std::size_t shard) {
        for (const PendingVote& v : by_shard[shard])
          parallel.live_vote(v.slot, v.voter, v.time);
      },
      {.grain = 1});
  parallel.note_events_applied(events);

  stream::StreamResult a = parallel.result();
  stream::StreamResult b = serial.result();
  ASSERT_EQ(a.stories.size(), b.stories.size());
  for (std::size_t i = 0; i < a.stories.size(); ++i) {
    SCOPED_TRACE("story slot " + std::to_string(i));
    EXPECT_EQ(a.stories[i].cascade, b.stories[i].cascade);
    EXPECT_EQ(a.stories[i].influence, b.stories[i].influence);
    EXPECT_EQ(a.stories[i].final_votes, b.stories[i].final_votes);
    EXPECT_EQ(a.stories[i].predicted_interesting,
              b.stories[i].predicted_interesting);
    EXPECT_EQ(a.stories[i].bayes_expected_final,
              b.stories[i].bayes_expected_final);
  }
}

// ---------------------------------------------------------------------------
// Server: construction-time validation.

TEST(ServeParamsTest, CheckpointCadenceRequiresPath) {
  ServeParams params;
  params.checkpoint_ms = 100;  // no checkpoint_path
  EXPECT_THROW(Server(test_corpus().corpus.network, params),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Server: end-to-end over real sockets.

ServeParams test_serve_params() {
  ServeParams params;
  params.stream = test_stream_params();
  return params;
}

/// Sends `wire` followed by a sync barrier, returns the connection fd (or
/// asserts). Keeps the decoder for subsequent queries.
int drive_events(std::uint16_t port, const std::vector<char>& wire,
                 FrameDecoder& decoder) {
  const int fd = connect_loopback(port);
  EXPECT_GE(fd, 0);
  if (fd < 0) return -1;
  std::string error;
  EXPECT_TRUE(write_all(fd, wire.data(), wire.size()));
  EXPECT_TRUE(sync_barrier(fd, decoder, 1, error)) << error;
  return fd;
}

TEST_F(ServeTest, EndToEndMatchesOracleAndDrainsEverything) {
  const auto load = test_load(60, 50);
  std::vector<char> wire;
  encode_load(load, 0, total_events(load), wire);

  Server server(test_corpus().corpus.network, test_serve_params());
  const auto port = server.start();
  ASSERT_GT(port, 0);
  EXPECT_TRUE(server.running());

  FrameDecoder decoder;
  const int fd = drive_events(port, wire, decoder);
  ASSERT_GE(fd, 0);

  // Query every story through the socket and compare against the oracle.
  std::vector<char> queries;
  for (const LoadItem& l : load) {
    encode(QueryStateMsg{l.story->id}, queries);
    encode(QueryPredictMsg{l.story->id}, queries);
  }
  ASSERT_TRUE(write_all(fd, queries.data(), queries.size()));
  std::vector<Message> replies;
  std::string error;
  ASSERT_TRUE(read_messages(fd, decoder, replies, load.size() * 2, error))
      << error;
  ::close(fd);

  stream::StreamEngine oracle = make_oracle(load);
  for (std::size_t i = 0; i < load.size(); ++i) {
    SCOPED_TRACE("story index " + std::to_string(i));
    const auto expect = oracle.query_story(static_cast<std::uint32_t>(i));
    const auto& state = std::get<StateReplyMsg>(replies[i * 2]);
    const auto& predict = std::get<PredictReplyMsg>(replies[i * 2 + 1]);
    EXPECT_EQ(state.found, 1);
    EXPECT_EQ(state.story_id, expect.id);
    EXPECT_EQ(state.votes, expect.final_votes);
    EXPECT_EQ(state.fans1, expect.fans1);
    ASSERT_EQ(state.cascade.size(), expect.cascade.size());
    for (std::size_t k = 0; k < state.cascade.size(); ++k)
      EXPECT_EQ(state.cascade[k], expect.cascade[k]);
    EXPECT_EQ(state.promoted, expect.promoted_time.has_value() ? 1 : 0);
    EXPECT_EQ(state.promoted_time, expect.promoted_time.value_or(0.0));
    EXPECT_EQ(predict.found, 1);
    EXPECT_EQ(predict.has_c45,
              expect.predicted_interesting.has_value() ? 1 : 0);
    EXPECT_EQ(predict.c45_yes,
              expect.predicted_interesting.value_or(false) ? 1 : 0);
    EXPECT_EQ(predict.has_bayes,
              expect.bayes_interesting.has_value() ? 1 : 0);
    EXPECT_EQ(predict.bayes_yes,
              expect.bayes_interesting.value_or(false) ? 1 : 0);
    EXPECT_EQ(predict.bayes_expected_final, expect.bayes_expected_final);
  }

  // Graceful drain applied every accepted event.
  server.request_stop();
  server.wait();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.engine().events_applied(), total_events(load));
  EXPECT_EQ(server.engine().story_count(), load.size());
}

TEST_F(ServeTest, RejectsUnknownStoriesAndDuplicateSubmits) {
  Server server(test_corpus().corpus.network, test_serve_params());
  const auto port = server.start();

  {
    // Vote for a story never submitted -> kUnknownStory.
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::vector<char> wire;
    encode(VoteMsg{424242, 1, 1.0}, wire);
    ASSERT_TRUE(write_all(fd, wire.data(), wire.size()));
    FrameDecoder decoder;
    std::vector<Message> replies;
    std::string error;
    EXPECT_FALSE(read_messages(fd, decoder, replies, 1, error));
    EXPECT_NE(error.find("code=1"), std::string::npos) << error;
    ::close(fd);
  }
  {
    // Submitting the same story twice -> kDuplicateStory.
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    std::vector<char> wire;
    encode(SubmitMsg{7, 11, 1.0}, wire);
    encode(SubmitMsg{7, 12, 2.0}, wire);
    ASSERT_TRUE(write_all(fd, wire.data(), wire.size()));
    FrameDecoder decoder;
    std::vector<Message> replies;
    std::string error;
    EXPECT_FALSE(read_messages(fd, decoder, replies, 1, error));
    EXPECT_NE(error.find("code=2"), std::string::npos) << error;
    ::close(fd);
  }
  {
    // A malformed frame -> kBadFrame, then the server closes the socket.
    const int fd = connect_loopback(port);
    ASSERT_GE(fd, 0);
    const std::uint32_t bad_len = 0xfffffff0u;
    ASSERT_TRUE(write_all(fd, reinterpret_cast<const char*>(&bad_len), 4));
    FrameDecoder decoder;
    std::vector<Message> replies;
    std::string error;
    EXPECT_FALSE(read_messages(fd, decoder, replies, 1, error));
    EXPECT_NE(error.find("code=3"), std::string::npos) << error;
    ::close(fd);
  }

  server.request_stop();
  server.wait();
}

TEST_F(ServeTest, RestoreAfterStartThrows) {
  Server server(test_corpus().corpus.network, test_serve_params());
  server.start();
  EXPECT_THROW(server.restore_checkpoint(dir_ / "nope.ckpt"),
               std::logic_error);
  server.request_stop();
  server.wait();
}

// ---------------------------------------------------------------------------
// Kill/resume: a drain checkpoint restored into a fresh server must end in
// a state bit-identical to an uninterrupted run (determinism mode).

TEST_F(ServeTest, KillResumeCheckpointBitIdenticalToUninterrupted) {
  const auto load = test_load(40, 40);
  const std::size_t events = total_events(load);
  const std::size_t cut = events / 2;  // cuts mid-story on purpose

  auto run_server = [&](const std::filesystem::path& ckpt,
                        const std::filesystem::path& restore,
                        std::size_t begin_event, std::size_t end_event) {
    ServeParams params = test_serve_params();
    params.determinism = true;
    params.checkpoint_path = ckpt;
    Server server(test_corpus().corpus.network, params);
    if (!restore.empty()) server.restore_checkpoint(restore);
    const auto port = server.start();
    std::vector<char> wire;
    encode_load(load, begin_event, end_event, wire);
    FrameDecoder decoder;
    const int fd = drive_events(port, wire, decoder);
    ASSERT_GE(fd, 0);
    ::close(fd);
    server.request_stop();
    server.wait();
    EXPECT_EQ(server.engine().events_applied(), end_event);
  };

  const auto ckpt_half = dir_ / "half.ckpt";
  const auto ckpt_resumed = dir_ / "resumed.ckpt";
  const auto ckpt_straight = dir_ / "straight.ckpt";

  run_server(ckpt_half, {}, 0, cut);              // killed at the cut
  run_server(ckpt_resumed, ckpt_half, cut, events);  // restored, finished
  run_server(ckpt_straight, {}, 0, events);       // never interrupted

  const std::string resumed = read_file(ckpt_resumed);
  const std::string straight = read_file(ckpt_straight);
  ASSERT_FALSE(resumed.empty());
  EXPECT_EQ(resumed, straight) << "drain checkpoints diverged";

  // And the checkpoint is genuinely restorable.
  ServeParams params = test_serve_params();
  Server probe(test_corpus().corpus.network, params);
  probe.restore_checkpoint(ckpt_resumed);
  EXPECT_EQ(probe.engine().events_applied(), events);
}

// ---------------------------------------------------------------------------
// Periodic background checkpoints: written off the hot path, atomically
// replace each other, and restore while the server keeps serving.

TEST_F(ServeTest, PeriodicCheckpointIsRestorableMidServe) {
  const auto load = test_load(50, 40);
  const auto ckpt = dir_ / "periodic.ckpt";
  ServeParams params = test_serve_params();
  params.checkpoint_ms = 20;
  params.checkpoint_path = ckpt;
  Server server(test_corpus().corpus.network, params);
  const auto port = server.start();

  std::vector<char> wire;
  encode_load(load, 0, total_events(load), wire);
  FrameDecoder decoder;
  const int fd = drive_events(port, wire, decoder);
  ASSERT_GE(fd, 0);

  // Wait for a background checkpoint to land (cadence 20ms; generous cap).
  bool restored = false;
  for (int attempt = 0; attempt < 200 && !restored; ++attempt) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    if (!std::filesystem::exists(ckpt)) continue;
    try {
      Server probe(test_corpus().corpus.network, test_serve_params());
      probe.restore_checkpoint(ckpt);
      EXPECT_GT(probe.engine().story_count(), 0u);
      restored = true;
    } catch (const std::exception&) {
      // A checkpoint from before the sync barrier can be mid-cadence; the
      // next attempt sees a newer file.
    }
  }
  EXPECT_TRUE(restored) << "no restorable background checkpoint appeared";

  ::close(fd);
  server.request_stop();
  server.wait();
  EXPECT_EQ(server.engine().events_applied(), total_events(load));
}

}  // namespace
}  // namespace digg::serve
