#include "src/graph/digraph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace digg::graph {
namespace {

// A lists B as friend => edge A->B => A in fans(B), B in friends(A).
TEST(Digraph, FanFriendSemantics) {
  DigraphBuilder b;
  b.add_follow(0, 1);  // user 0 watches user 1
  const Digraph g = b.build();
  ASSERT_EQ(g.node_count(), 2u);
  ASSERT_EQ(g.friend_count(0), 1u);
  EXPECT_EQ(g.friends(0)[0], 1u);
  ASSERT_EQ(g.fan_count(1), 1u);
  EXPECT_EQ(g.fans(1)[0], 0u);
  EXPECT_EQ(g.friend_count(1), 0u);
  EXPECT_EQ(g.fan_count(0), 0u);
}

TEST(Digraph, AddFanIsInverseOfAddFollow) {
  DigraphBuilder b;
  b.add_fan(/*target=*/3, /*fan=*/7);
  const Digraph g = b.build();
  EXPECT_TRUE(g.has_edge(7, 3));
  EXPECT_FALSE(g.has_edge(3, 7));
}

TEST(Digraph, EmptyGraph) {
  const Digraph g = DigraphBuilder(0).build();
  EXPECT_EQ(g.node_count(), 0u);
  EXPECT_EQ(g.edge_count(), 0u);
}

TEST(Digraph, IsolatedNodesPreserved) {
  const Digraph g = DigraphBuilder(5).build();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_TRUE(g.friends(4).empty());
  EXPECT_TRUE(g.fans(4).empty());
}

TEST(Digraph, DuplicateEdgesDeduplicated) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(0, 1);
  b.add_follow(0, 1);
  const Digraph g = b.build();
  EXPECT_EQ(g.edge_count(), 1u);
}

TEST(Digraph, SelfLoopThrowsImmediately) {
  DigraphBuilder b;
  EXPECT_THROW(b.add_follow(2, 2), std::invalid_argument);
}

TEST(Digraph, NeighborRowsSorted) {
  DigraphBuilder b;
  b.add_follow(0, 5);
  b.add_follow(0, 2);
  b.add_follow(0, 9);
  b.add_follow(7, 2);
  b.add_follow(3, 2);
  const Digraph g = b.build();
  EXPECT_TRUE(std::is_sorted(g.friends(0).begin(), g.friends(0).end()));
  EXPECT_TRUE(std::is_sorted(g.fans(2).begin(), g.fans(2).end()));
}

TEST(Digraph, HasEdgeOnlyForExistingEdges) {
  DigraphBuilder b;
  b.add_follow(1, 2);
  b.add_follow(2, 3);
  const Digraph g = b.build();
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_FALSE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(1, 3));
}

TEST(Digraph, DegreesMatchRows) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(0, 2);
  b.add_follow(3, 0);
  const Digraph g = b.build();
  const auto out = g.out_degrees();
  const auto in = g.in_degrees();
  EXPECT_EQ(out[0], 2u);
  EXPECT_EQ(out[3], 1u);
  EXPECT_EQ(in[0], 1u);
  EXPECT_EQ(in[1], 1u);
  EXPECT_EQ(in[2], 1u);
  std::size_t out_sum = 0;
  for (std::size_t d : out) out_sum += d;
  EXPECT_EQ(out_sum, g.edge_count());
}

TEST(Digraph, OutOfRangeNodeThrows) {
  const Digraph g = DigraphBuilder(2).build();
  EXPECT_THROW(g.friends(2), std::out_of_range);
  EXPECT_THROW(g.fans(99), std::out_of_range);
}

TEST(Digraph, EnsureNodesGrowsNodeSet) {
  DigraphBuilder b;
  b.ensure_nodes(10);
  EXPECT_EQ(b.node_count(), 10u);
  b.ensure_nodes(5);  // never shrinks
  EXPECT_EQ(b.node_count(), 10u);
  EXPECT_EQ(b.build().node_count(), 10u);
}

TEST(Digraph, ImplicitNodeCreationFromEdges) {
  DigraphBuilder b;
  b.add_follow(4, 9);
  EXPECT_EQ(b.node_count(), 10u);
}

// Regression for the hybrid visibility sets (src/digg/hybrid_set.h), whose
// span unions require strictly increasing adjacency rows: edges inserted in
// arbitrary (here descending, duplicated) order must come out of build() as
// sorted, deduplicated rows in BOTH CSR directions.
TEST(Digraph, UnsortedEdgeListsNormalizeAtBuild) {
  DigraphBuilder b;
  const std::pair<NodeId, NodeId> edges[] = {{0, 9}, {0, 3}, {0, 7}, {0, 3},
                                             {8, 4}, {2, 4}, {6, 4}, {2, 4},
                                             {9, 0}, {5, 0}, {1, 0}};
  for (auto [u, v] : edges) b.add_follow(u, v);
  const Digraph g = b.build();
  EXPECT_EQ(g.edge_count(), 9u);  // two duplicates dropped
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto out = g.friends(u);
    const auto in = g.fans(u);
    for (std::size_t i = 1; i < out.size(); ++i)
      EXPECT_LT(out[i - 1], out[i]) << "out row " << u;
    for (std::size_t i = 1; i < in.size(); ++i)
      EXPECT_LT(in[i - 1], in[i]) << "in row " << u;
  }
  const NodeId out0[] = {3, 7, 9};
  const NodeId in4[] = {2, 6, 8};
  ASSERT_EQ(g.friends(0).size(), 3u);
  ASSERT_EQ(g.fans(4).size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(g.friends(0)[i], out0[i]);
    EXPECT_EQ(g.fans(4)[i], in4[i]);
  }
}

// Release-mode guard for HybridSet::union_span (src/digg/hybrid_set.h):
// union_span's own strictly-increasing precondition is a debug assert, and
// its SIMD merge kernels would silently drop or misplace ids on unsorted
// input. The enforcing copy of the invariant therefore lives at Digraph CSR
// construction — every materialisation path (from_parts, from_views, and
// build()'s post-normalization check) must reject a non-increasing adjacency
// row with a throw, in release builds too, so no such row can ever reach a
// union_span call site.
TEST(Digraph, UnsortedFanRowRejectedAtCsrBuild) {
  // 3 nodes; out-rows fine, but node 1's fan row {2, 0} is out of order.
  const std::vector<std::size_t> out_offsets = {0, 1, 2, 3};
  const std::vector<NodeId> out_targets = {1, 2, 1};
  const std::vector<std::size_t> in_offsets = {0, 0, 2, 3};
  const std::vector<NodeId> in_sources_bad = {2, 0, 1};   // fans(1) unsorted
  const std::vector<NodeId> in_sources_dup = {0, 0, 1};   // fans(1) not strict
  const std::vector<NodeId> in_sources_good = {0, 2, 1};  // fans(1) = {0, 2}

  EXPECT_THROW(Digraph::from_parts(out_offsets, out_targets, in_offsets,
                                   in_sources_bad),
               std::invalid_argument);
  EXPECT_THROW(Digraph::from_parts(out_offsets, out_targets, in_offsets,
                                   in_sources_dup),
               std::invalid_argument);
  EXPECT_THROW(Digraph::from_views(out_offsets, out_targets, in_offsets,
                                   in_sources_bad),
               std::invalid_argument);

  // The same columns with the row fixed are accepted, and the fans span they
  // yield satisfies union_span's contract directly.
  const Digraph g = Digraph::from_parts(out_offsets, out_targets, in_offsets,
                                        in_sources_good);
  const auto fans = g.fans(1);
  ASSERT_EQ(fans.size(), 2u);
  EXPECT_LT(fans[0], fans[1]);
}

TEST(Digraph, BuildOutputAlwaysSatisfiesUnionSpanContract) {
  // build() normalizes arbitrary insertion order and then re-verifies both
  // CSR directions unconditionally (NDEBUG included); a surviving graph's
  // rows are safe union_span input by construction. Cross-check a messy
  // pseudo-random edge soup end to end.
  DigraphBuilder b(64);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 400; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const NodeId u = static_cast<NodeId>(x % 64);
    const NodeId v = static_cast<NodeId>((x >> 32) % 64);
    if (u != v) b.add_follow(u, v);
  }
  const Digraph g = b.build();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto in = g.fans(u);
    for (std::size_t i = 1; i < in.size(); ++i)
      ASSERT_LT(in[i - 1], in[i]) << "fans row " << u;
    const auto out = g.friends(u);
    for (std::size_t i = 1; i < out.size(); ++i)
      ASSERT_LT(out[i - 1], out[i]) << "friends row " << u;
  }
}

TEST(Digraph, LargerGraphCrossCheck) {
  // Verify CSR symmetry: u in fans(v) iff v in friends(u), over all pairs.
  DigraphBuilder b;
  const std::pair<NodeId, NodeId> edges[] = {{0, 1}, {1, 2}, {2, 0}, {3, 1},
                                             {4, 1}, {1, 4}, {2, 4}};
  for (auto [u, v] : edges) b.add_follow(u, v);
  const Digraph g = b.build();
  for (NodeId u = 0; u < g.node_count(); ++u) {
    for (NodeId v : g.friends(u)) {
      const auto fans = g.fans(v);
      EXPECT_TRUE(std::binary_search(fans.begin(), fans.end(), u));
    }
    for (NodeId w : g.fans(u)) {
      EXPECT_TRUE(g.has_edge(w, u));
    }
  }
}

}  // namespace
}  // namespace digg::graph
