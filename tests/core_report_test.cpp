#include "src/core/report.h"

#include <gtest/gtest.h>

#include <sstream>

#include "src/data/synthetic.h"

namespace digg::core {
namespace {

const data::Corpus& report_corpus() {
  static const data::Corpus corpus = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.story_count = 400;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng).corpus;
  }();
  return corpus;
}

TEST(ReproductionReport, ContainsEverySection) {
  stats::Rng rng(1);
  const std::string report = reproduction_report(report_corpus(), rng);
  for (const char* heading :
       {"# Reproduction report", "## Figure 1", "## Figure 2a",
        "## Figure 2b", "## Figure 3", "## Figure 4", "## Figure 5",
        "## Section 3"}) {
    EXPECT_NE(report.find(heading), std::string::npos) << heading;
  }
}

TEST(ReproductionReport, ContainsPaperReferenceValues) {
  stats::Rng rng(2);
  const std::string report = reproduction_report(report_corpus(), rng);
  EXPECT_NE(report.find("174/207"), std::string::npos);
  EXPECT_NE(report.find("TP=4 TN=32 FP=11 FN=1"), std::string::npos);
  EXPECT_NE(report.find("0.36"), std::string::npos);
  EXPECT_NE(report.find("0.57"), std::string::npos);
}

TEST(ReproductionReport, RendersTheDecisionTree) {
  stats::Rng rng(3);
  const std::string report = reproduction_report(report_corpus(), rng);
  EXPECT_NE(report.find("v10"), std::string::npos);
  EXPECT_NE(report.find("```"), std::string::npos);
}

TEST(ReproductionReport, SignificanceSectionsToggle) {
  stats::Rng rng1(4);
  stats::Rng rng2(4);
  ReportOptions with;
  with.include_significance = true;
  ReportOptions without;
  without.include_significance = false;
  const std::string a = reproduction_report(report_corpus(), rng1, with);
  const std::string b = reproduction_report(report_corpus(), rng2, without);
  EXPECT_NE(a.find("Mann-Whitney"), std::string::npos);
  EXPECT_EQ(b.find("Mann-Whitney"), std::string::npos);
  EXPECT_EQ(b.find("z-test"), std::string::npos);
}

TEST(ReproductionReport, DeterministicGivenSeed) {
  stats::Rng a(5);
  stats::Rng b(5);
  EXPECT_EQ(reproduction_report(report_corpus(), a),
            reproduction_report(report_corpus(), b));
}

TEST(WriteReproductionReport, StreamsSameContent) {
  stats::Rng a(6);
  stats::Rng b(6);
  std::ostringstream os;
  write_reproduction_report(report_corpus(), a, os);
  EXPECT_EQ(os.str(), reproduction_report(report_corpus(), b));
}

}  // namespace
}  // namespace digg::core
