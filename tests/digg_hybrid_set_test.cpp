#include "src/digg/hybrid_set.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "src/stats/rng.h"

namespace digg::platform {
namespace {

std::vector<std::uint32_t> sorted_unique_span(stats::Rng& rng,
                                              std::size_t universe,
                                              std::size_t max_len) {
  std::set<std::uint32_t> picked;
  const std::size_t len =
      static_cast<std::size_t>(rng.uniform_int(0, int64_t(max_len)));
  while (picked.size() < len)
    picked.insert(static_cast<std::uint32_t>(
        rng.uniform_int(0, int64_t(universe) - 1)));
  return {picked.begin(), picked.end()};
}

void expect_equals_reference(const HybridSet& set,
                             const std::set<std::uint32_t>& ref,
                             const char* where) {
  ASSERT_EQ(set.size(), ref.size()) << where;
  const std::vector<std::uint32_t> got = set.to_vector();
  const std::vector<std::uint32_t> want(ref.begin(), ref.end());
  ASSERT_EQ(got, want) << where;
}

TEST(HybridSet, EmptyAfterReset) {
  HybridSet s(100);
  EXPECT_EQ(s.size(), 0u);
  EXPECT_TRUE(s.empty());
  EXPECT_FALSE(s.is_bitmap());
  EXPECT_EQ(s.universe(), 100u);
  EXPECT_FALSE(s.contains(0));
  EXPECT_TRUE(s.to_vector().empty());
}

TEST(HybridSet, InsertEraseContains) {
  HybridSet s(1000);
  EXPECT_TRUE(s.insert(42));
  EXPECT_FALSE(s.insert(42));  // already present
  EXPECT_TRUE(s.contains(42));
  EXPECT_FALSE(s.contains(41));
  EXPECT_TRUE(s.erase(42));
  EXPECT_FALSE(s.erase(42));  // already gone
  EXPECT_FALSE(s.contains(42));
  EXPECT_EQ(s.size(), 0u);
}

// Erase + reinsert through the tombstone staging buffer: the id must
// resurrect, not stay dead (the platform re-adds watchers whose fan voted).
TEST(HybridSet, TombstoneEraseThenReinsert) {
  HybridSet s(100000);  // large universe: stays in array mode
  for (std::uint32_t id = 0; id < 500; id += 5) s.insert(id);
  ASSERT_FALSE(s.is_bitmap());
  EXPECT_TRUE(s.erase(250));   // tombstoned in dead_
  EXPECT_FALSE(s.contains(250));
  EXPECT_TRUE(s.insert(250));  // cancels the tombstone
  EXPECT_TRUE(s.contains(250));
  EXPECT_TRUE(s.erase(250));
  EXPECT_TRUE(s.insert(250));
  EXPECT_TRUE(s.contains(250));
}

// More than kStageCap pending inserts must survive the staging flush.
TEST(HybridSet, StagingFlushPastCap) {
  HybridSet s(1u << 20);  // threshold 32768: array mode throughout
  std::set<std::uint32_t> ref;
  // Descending singles: worst case for a sorted array, every id stages.
  for (std::uint32_t i = 0; i < 3 * HybridSet::kStageCap + 7; ++i) {
    const std::uint32_t id = 1000000 - 31 * i;
    EXPECT_TRUE(s.insert(id));
    ref.insert(id);
  }
  ASSERT_FALSE(s.is_bitmap());
  expect_equals_reference(s, ref, "after staged singles");
  // And the same number of staged erases.
  for (std::uint32_t i = 0; i < 2 * HybridSet::kStageCap + 3; ++i) {
    const std::uint32_t id = 1000000 - 31 * i;
    EXPECT_TRUE(s.erase(id));
    ref.erase(id);
  }
  expect_equals_reference(s, ref, "after staged erases");
}

// Crossing promote_threshold flips to bitmap mode exactly once, with no
// observable change in contents.
TEST(HybridSet, PromotionBoundaryPreservesContents) {
  const std::size_t universe = 4096;
  EXPECT_EQ(HybridSet::promote_threshold(universe), 128u);  // 4096/32
  // Tiny universes floor at kStageCap so staging can fill before promoting.
  EXPECT_EQ(HybridSet::promote_threshold(100), HybridSet::kStageCap);
  EXPECT_EQ(HybridSet::promote_threshold(1u << 20), (1u << 20) / 32);

  // Drive a set over its threshold with a bulk union and check the flip.
  HybridSet t(universe);
  std::set<std::uint32_t> ref;
  std::vector<std::uint32_t> span;
  for (std::uint32_t id = 0; id < universe; id += 2) span.push_back(id);
  ASSERT_GT(span.size(), HybridSet::promote_threshold(universe));
  EXPECT_FALSE(t.is_bitmap());
  t.union_span(span);
  ref.insert(span.begin(), span.end());
  EXPECT_TRUE(t.is_bitmap());
  expect_equals_reference(t, ref, "after promoting union");

  // Bitmap-mode ops still agree with the reference.
  EXPECT_FALSE(t.insert(span.front()));
  EXPECT_TRUE(t.insert(1));
  ref.insert(1);
  EXPECT_TRUE(t.erase(2));
  ref.erase(2);
  expect_equals_reference(t, ref, "bitmap-mode mutations");

  // reset() drops back to array mode.
  t.reset(universe);
  EXPECT_FALSE(t.is_bitmap());
  EXPECT_EQ(t.size(), 0u);
}

// Gallop search edges: first element, last element, gaps, before-begin,
// past-end, and a query sequence that jumps backwards (pos hint must not
// produce false negatives — union_span only ever walks forward, but
// contains() is called with arbitrary keys).
TEST(HybridSet, GallopEdgeCases) {
  HybridSet s(1u << 20);
  const std::uint32_t ids[] = {3, 10, 11, 12, 500, 65536, 1000000};
  for (std::uint32_t id : ids) s.insert(id);
  for (std::uint32_t id : ids) EXPECT_TRUE(s.contains(id)) << id;
  const std::uint32_t absent[] = {0, 2, 4, 9, 13, 499, 501, 65535, 1000001};
  for (std::uint32_t id : absent) EXPECT_FALSE(s.contains(id)) << id;
  // Ascending span probing through all the gaps exercises the gallop hint.
  std::vector<std::uint32_t> span;
  for (std::uint32_t k = 0; k <= 1000; ++k) span.push_back(k);
  std::size_t news = 0;
  s.union_span(
      span, [](std::uint32_t) { return true; },
      [&](std::uint32_t) { ++news; });
  EXPECT_EQ(news, span.size() - 5);  // 3, 10, 11, 12, 500 already present
}

// union_span's accept filter and on_new ordering contract.
TEST(HybridSet, UnionSpanAcceptAndOrder) {
  HybridSet s(100000);
  s.insert(20);
  s.insert(40);
  const std::vector<std::uint32_t> span = {10, 20, 30, 40, 50, 60};
  std::vector<std::uint32_t> seen;
  s.union_span(
      span, [](std::uint32_t id) { return id != 50; },
      [&](std::uint32_t id) { seen.push_back(id); });
  // Present ids (20, 40) and the rejected id (50) never reach on_new; the
  // rest arrive in span order.
  const std::vector<std::uint32_t> want = {10, 30, 60};
  EXPECT_EQ(seen, want);
  EXPECT_FALSE(s.contains(50));
  EXPECT_TRUE(s.contains(10));
  EXPECT_TRUE(s.contains(60));
  EXPECT_EQ(s.size(), 5u);
}

TEST(HybridSet, InsertBeyondUniverseGrows) {
  HybridSet s(10);
  EXPECT_TRUE(s.insert(1000));
  EXPECT_GE(s.universe(), 1001u);
  EXPECT_TRUE(s.contains(1000));
  // Bitmap mode grows too.
  HybridSet t(64);
  for (std::uint32_t id = 0; id < 64; ++id) t.insert(id);
  ASSERT_TRUE(t.is_bitmap());
  EXPECT_TRUE(t.insert(5000));
  EXPECT_TRUE(t.contains(5000));
  EXPECT_EQ(t.size(), 65u);
}

TEST(HybridSet, ShedReleasesBytes) {
  HybridSet s(100000);
  for (std::uint32_t id = 0; id < 2000; ++id) s.insert(17 * id % 99991);
  EXPECT_GT(s.size_bytes(), 0u);
  s.shed();
  EXPECT_EQ(s.size_bytes(), 0u);
  EXPECT_EQ(s.size(), 0u);
  s.reset(100000);  // usable again after shed
  EXPECT_TRUE(s.insert(7));
  EXPECT_TRUE(s.contains(7));
}

// The randomized property test: a HybridSet and a std::set driven by the
// same operation stream must agree at every step, across both
// representations and the promotion in between.
TEST(HybridSet, RandomizedAgainstReferenceSet) {
  const std::size_t universes[] = {300, 4096, 100000};
  for (const std::size_t universe : universes) {
    stats::Rng rng(42 + static_cast<std::uint64_t>(universe));
    HybridSet s(universe);
    std::set<std::uint32_t> ref;
    for (int step = 0; step < 4000; ++step) {
      const std::uint32_t id = static_cast<std::uint32_t>(
          rng.uniform_int(0, int64_t(universe) - 1));
      switch (rng.uniform_int(0, 9)) {
        case 0:
        case 1:
        case 2:
        case 3: {  // single insert
          EXPECT_EQ(s.insert(id), ref.insert(id).second);
          break;
        }
        case 4:
        case 5: {  // single erase
          EXPECT_EQ(s.erase(id), ref.erase(id) > 0);
          break;
        }
        case 6:
        case 7: {  // membership probe
          EXPECT_EQ(s.contains(id), ref.count(id) > 0);
          break;
        }
        case 8: {  // sorted-span union (the CSR fan-list path)
          const auto span = sorted_unique_span(rng, universe, 64);
          std::vector<std::uint32_t> news;
          s.union_span(
              span, [](std::uint32_t) { return true; },
              [&](std::uint32_t v) { news.push_back(v); });
          std::vector<std::uint32_t> want_new;
          for (const std::uint32_t v : span)
            if (ref.insert(v).second) want_new.push_back(v);
          EXPECT_EQ(news, want_new);
          break;
        }
        case 9: {  // occasional full reset
          if (rng.uniform_int(0, 9) == 0) {
            s.reset(universe);
            ref.clear();
          }
          break;
        }
        default:
          break;
      }
      ASSERT_EQ(s.size(), ref.size()) << "universe " << universe
                                      << " step " << step;
      if (step % 257 == 0) {
        const std::vector<std::uint32_t> want(ref.begin(), ref.end());
        ASSERT_EQ(s.to_vector(), want)
            << "universe " << universe << " step " << step;
      }
    }
    expect_equals_reference(s, ref, "final state");
  }
}

}  // namespace
}  // namespace digg::platform
