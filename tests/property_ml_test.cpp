// Property suites for the learning stack: invariants that must hold across
// randomized datasets (seed-parameterized).

#include <gtest/gtest.h>

#include <cmath>

#include "src/ml/c45.h"
#include "src/ml/forest.h"
#include "src/ml/roc.h"
#include "src/stats/bootstrap.h"
#include "src/stats/hypothesis.h"
#include "src/stats/rng.h"
#include "src/stats/summary.h"

namespace digg {
namespace {

class MlProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MlProperty,
                         ::testing::Values(3, 7, 11, 19, 23, 31, 43, 59));

ml::Dataset random_dataset(stats::Rng& rng, std::size_t n = 80) {
  ml::Dataset d({{"x", ml::AttributeKind::kNumeric, {}},
                 {"y", ml::AttributeKind::kNumeric, {}}},
                {"no", "yes"});
  for (std::size_t i = 0; i < n; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 10.0);
    const bool label = rng.bernoulli(1.0 / (1.0 + std::exp(-(x - 5.0))));
    d.add({x, y}, label ? 1 : 0);
  }
  return d;
}

// C4.5 splits on thresholds, so any strictly monotone transform of a
// numeric attribute must leave predictions unchanged.
TEST_P(MlProperty, TreeInvariantUnderMonotoneTransform) {
  stats::Rng rng(GetParam());
  const ml::Dataset original = random_dataset(rng);
  ml::Dataset transformed({{"x", ml::AttributeKind::kNumeric, {}},
                           {"y", ml::AttributeKind::kNumeric, {}}},
                          {"no", "yes"});
  for (std::size_t i = 0; i < original.size(); ++i) {
    const double x = original.value(i, 0);
    transformed.add({std::exp(x / 3.0), original.value(i, 1)},
                    original.label(i));
  }
  const ml::DecisionTree a = ml::DecisionTree::train(original);
  const ml::DecisionTree b = ml::DecisionTree::train(transformed);
  stats::Rng probe(GetParam() + 1);
  for (int k = 0; k < 40; ++k) {
    const double x = probe.uniform(0.0, 10.0);
    const double y = probe.uniform(0.0, 10.0);
    EXPECT_EQ(a.predict({x, y}), b.predict({std::exp(x / 3.0), y}));
  }
}

TEST_P(MlProperty, TreePredictionsAreValidClasses) {
  stats::Rng rng(GetParam() * 5 + 1);
  const ml::Dataset d = random_dataset(rng);
  const ml::DecisionTree tree = ml::DecisionTree::train(d);
  stats::Rng probe(GetParam() + 2);
  for (int k = 0; k < 50; ++k) {
    const std::vector<double> row = {probe.uniform(-5.0, 15.0),
                                     probe.uniform(-5.0, 15.0)};
    EXPECT_LT(tree.predict(row), 2u);
    const auto proba = tree.predict_proba(row);
    EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-9);
    EXPECT_GE(proba[0], 0.0);
    EXPECT_GE(proba[1], 0.0);
  }
}

TEST_P(MlProperty, TreeTrainingAccuracyBeatsChanceOnSeparableData) {
  stats::Rng rng(GetParam() * 7 + 3);
  const ml::Dataset d = random_dataset(rng, 120);
  const ml::DecisionTree tree = ml::DecisionTree::train(d);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i)
    if (tree.predict(d.row(i)) == d.label(i)) ++correct;
  EXPECT_GT(correct, d.size() / 2);
}

TEST_P(MlProperty, RocAucInvariantUnderMonotoneScoreTransform) {
  stats::Rng rng(GetParam() * 11 + 5);
  std::vector<ml::Scored> scored;
  std::vector<ml::Scored> transformed;
  for (int i = 0; i < 60; ++i) {
    const double score = rng.uniform(0.0, 1.0);
    const bool positive = rng.bernoulli(score);  // informative scores
    scored.push_back({score, positive});
    transformed.push_back({std::atan(score * 4.0), positive});
  }
  // Guard: both classes must appear.
  bool has_pos = false;
  bool has_neg = false;
  for (const auto& s : scored) (s.positive ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) GTEST_SKIP();
  EXPECT_NEAR(ml::roc_auc(scored), ml::roc_auc(transformed), 1e-12);
}

TEST_P(MlProperty, RocAucWithinUnitInterval) {
  stats::Rng rng(GetParam() * 13 + 7);
  std::vector<ml::Scored> scored;
  for (int i = 0; i < 40; ++i)
    scored.push_back({rng.uniform(0.0, 1.0), rng.bernoulli(0.5)});
  bool has_pos = false;
  bool has_neg = false;
  for (const auto& s : scored) (s.positive ? has_pos : has_neg) = true;
  if (!has_pos || !has_neg) GTEST_SKIP();
  const double auc = ml::roc_auc(scored);
  EXPECT_GE(auc, 0.0);
  EXPECT_LE(auc, 1.0);
  EXPECT_GE(ml::pr_auc(scored), 0.0);
  EXPECT_LE(ml::pr_auc(scored), 1.0 + 1e-12);
}

TEST_P(MlProperty, ForestProbaAveragesTreeProbas) {
  stats::Rng rng(GetParam() * 17 + 9);
  const ml::Dataset d = random_dataset(rng, 60);
  stats::Rng train_rng(GetParam());
  ml::ForestParams params;
  params.tree_count = 7;
  const ml::Forest forest = ml::Forest::train(d, params, train_rng);
  const std::vector<double> row = {5.0, 5.0};
  std::vector<double> manual(2, 0.0);
  for (std::size_t t = 0; t < forest.size(); ++t) {
    const auto p = forest.tree(t).predict_proba(row);
    manual[0] += p[0];
    manual[1] += p[1];
  }
  const auto proba = forest.predict_proba(row);
  EXPECT_NEAR(proba[0], manual[0] / 7.0, 1e-12);
  EXPECT_NEAR(proba[1], manual[1] / 7.0, 1e-12);
}

TEST_P(MlProperty, BootstrapIntervalContainsPointEstimate) {
  stats::Rng rng(GetParam() * 19 + 11);
  std::vector<double> data;
  for (int i = 0; i < 60; ++i) data.push_back(rng.normal(3.0, 2.0));
  stats::Rng boot(GetParam() + 100);
  const stats::Interval ci = stats::bootstrap_mean_ci(data, 300, 0.95, boot);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST_P(MlProperty, MannWhitneySymmetric) {
  stats::Rng rng(GetParam() * 23 + 13);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 30; ++i) {
    a.push_back(rng.normal(0.0, 1.0));
    b.push_back(rng.normal(0.5, 1.0));
  }
  const auto ab = stats::mann_whitney_u(a, b);
  const auto ba = stats::mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-9);
}

}  // namespace
}  // namespace digg
