#include "src/dynamics/novelty.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/digg/story.h"

namespace digg::dynamics {
namespace {

// Builds a promoted story whose post-promotion votes follow the decay law
// with the given half-life exactly: the k-th vote arrives when
// A * (1 - 2^(-t/hl)) = k.
platform::Story story_with_half_life(double half_life, double amplitude,
                                     std::size_t votes) {
  platform::Story s = platform::make_story(0, 0, 0.0, 0.5);
  s.promoted_at = 100.0;
  s.phase = platform::StoryPhase::kFrontPage;
  platform::add_vote(s, 1, 50.0);  // one pre-promotion vote
  for (std::size_t k = 1; k <= votes; ++k) {
    const double fraction = static_cast<double>(k) / amplitude;
    const double t =
        -half_life * std::log2(1.0 - fraction);  // invert the decay law
    platform::add_vote(s, static_cast<platform::UserId>(k + 1), 100.0 + t);
  }
  return s;
}

TEST(NoveltyFit, RecoversKnownHalfLife) {
  const platform::Story s = story_with_half_life(1440.0, 400.0, 300);
  const auto fit = fit_novelty_decay(s);
  ASSERT_TRUE(fit.has_value());
  EXPECT_NEAR(fit->half_life_minutes, 1440.0, 150.0);
  EXPECT_NEAR(fit->amplitude, 400.0, 40.0);
  EXPECT_LT(fit->rmse, 2.0);
  EXPECT_EQ(fit->samples, 300u);
}

TEST(NoveltyFit, DistinguishesFastAndSlowDecay) {
  const auto fast = fit_novelty_decay(story_with_half_life(300.0, 200.0, 150));
  const auto slow =
      fit_novelty_decay(story_with_half_life(2880.0, 200.0, 150));
  ASSERT_TRUE(fast.has_value());
  ASSERT_TRUE(slow.has_value());
  EXPECT_LT(fast->half_life_minutes * 3.0, slow->half_life_minutes);
}

TEST(NoveltyFit, UnpromotedStoryReturnsNullopt) {
  platform::Story s = platform::make_story(0, 0, 0.0, 0.5);
  for (platform::UserId u = 1; u < 50; ++u)
    platform::add_vote(s, u, static_cast<double>(u));
  EXPECT_FALSE(fit_novelty_decay(s).has_value());
}

TEST(NoveltyFit, TooFewPostPromotionVotesReturnsNullopt) {
  platform::Story s = platform::make_story(0, 0, 0.0, 0.5);
  s.promoted_at = 10.0;
  s.phase = platform::StoryPhase::kFrontPage;
  for (platform::UserId u = 1; u < 10; ++u)
    platform::add_vote(s, u, 10.0 + static_cast<double>(u));
  EXPECT_FALSE(fit_novelty_decay(s, /*min_votes=*/20).has_value());
}

TEST(NoveltyFitAll, FitsOnlyQualifyingStories) {
  std::vector<platform::Story> stories;
  stories.push_back(story_with_half_life(1440.0, 300.0, 100));
  stories.push_back(platform::make_story(1, 0, 0.0, 0.5));  // unpromoted
  stories.push_back(story_with_half_life(720.0, 300.0, 100));
  const std::vector<platform::StoryView> views(stories.begin(), stories.end());
  const auto fits = fit_novelty_decay_all(views);
  EXPECT_EQ(fits.size(), 2u);
}

}  // namespace
}  // namespace digg::dynamics
