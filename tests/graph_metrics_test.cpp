#include "src/graph/metrics.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace digg::graph {
namespace {

Digraph triangle_both_ways() {
  DigraphBuilder b;
  for (NodeId u = 0; u < 3; ++u)
    for (NodeId v = 0; v < 3; ++v)
      if (u != v) b.add_follow(u, v);
  return b.build();
}

TEST(DegreeStats, EmptyAndBasic) {
  EXPECT_EQ(degree_stats({}).mean, 0.0);
  const DegreeStats s = degree_stats({1, 2, 3, 10});
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 10u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
}

TEST(Reciprocity, FullyMutualGraphIsOne) {
  EXPECT_DOUBLE_EQ(reciprocity(triangle_both_ways()), 1.0);
}

TEST(Reciprocity, OneWayChainIsZero) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(1, 2);
  EXPECT_DOUBLE_EQ(reciprocity(b.build()), 0.0);
}

TEST(Reciprocity, MixedGraph) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(1, 0);  // mutual pair: 2 reciprocated edges
  b.add_follow(0, 2);  // one-way
  b.add_follow(0, 3);  // one-way
  EXPECT_DOUBLE_EQ(reciprocity(b.build()), 0.5);
}

TEST(Reciprocity, EmptyGraphIsZero) {
  EXPECT_DOUBLE_EQ(reciprocity(DigraphBuilder(3).build()), 0.0);
}

TEST(Clustering, TriangleIsFullyClustered) {
  const Digraph g = triangle_both_ways();
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
}

TEST(Clustering, StarHasZeroClustering) {
  DigraphBuilder b;
  for (NodeId leaf = 1; leaf <= 4; ++leaf) b.add_follow(leaf, 0);
  const Digraph g = b.build();
  EXPECT_DOUBLE_EQ(local_clustering(g, 0), 0.0);
}

TEST(Clustering, DegreeOneNodeIsZero) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  EXPECT_DOUBLE_EQ(local_clustering(b.build(), 0), 0.0);
}

TEST(Clustering, UsesUndirectedProjection) {
  // 0->1, 2->1, 0->2: neighbors of 1 are {0,2}, joined by an edge either way.
  DigraphBuilder b;
  b.add_follow(0, 1);
  b.add_follow(2, 1);
  b.add_follow(0, 2);
  EXPECT_DOUBLE_EQ(local_clustering(b.build(), 1), 1.0);
}

TEST(Assortativity, DisassortativeStar) {
  // Star with leaves following the hub: hub fan-degree high, leaves 0.
  DigraphBuilder b;
  for (NodeId leaf = 1; leaf <= 9; ++leaf) b.add_follow(leaf, 0);
  // All edges connect fan-degree-0 sources to fan-degree-9 target: source
  // degree constant -> pearson undefined -> metric returns 0.
  EXPECT_DOUBLE_EQ(in_degree_assortativity(b.build()), 0.0);
}

TEST(Assortativity, PositiveWhenHubsFollowHubsAndLeavesFollowLeaves) {
  DigraphBuilder b;
  // A mutual clique of four hubs (fan-degree 3 each)...
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = 0; v < 4; ++v)
      if (u != v) b.add_follow(u, v);
  // ...plus mutual leaf pairs (fan-degree 1 each). Every edge connects
  // equal-degree endpoints: assortativity 1.
  for (NodeId p = 4; p < 10; p += 2) {
    b.add_follow(p, p + 1);
    b.add_follow(p + 1, p);
  }
  EXPECT_NEAR(in_degree_assortativity(b.build()), 1.0, 1e-9);
}

TEST(FriendsFansScatter, PlusOneConvention) {
  DigraphBuilder b;
  b.add_follow(0, 1);
  const auto scatter = friends_fans_scatter(b.build());
  ASSERT_EQ(scatter.size(), 2u);
  EXPECT_EQ(scatter[0].first, 2u);   // 1 friend + 1
  EXPECT_EQ(scatter[0].second, 1u);  // 0 fans + 1
  EXPECT_EQ(scatter[1].first, 1u);
  EXPECT_EQ(scatter[1].second, 2u);
}

TEST(FriendsFansScatter, TopOfPreferentialGraphDominates) {
  stats::Rng rng(5);
  PreferentialAttachmentParams params;
  params.node_count = 1000;
  const Digraph g = preferential_attachment(params, rng);
  const auto scatter = friends_fans_scatter(g);
  std::size_t max_fans = 0;
  NodeId argmax = 0;
  for (NodeId u = 0; u < scatter.size(); ++u) {
    if (scatter[u].second > max_fans) {
      max_fans = scatter[u].second;
      argmax = u;
    }
  }
  EXPECT_LT(argmax, 50u);  // a very early arrival
}

}  // namespace
}  // namespace digg::graph
