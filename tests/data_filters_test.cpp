#include "src/data/filters.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::data {
namespace {

using platform::add_vote;
using platform::make_story;

Corpus filter_fixture() {
  Corpus c;
  c.network = graph::DigraphBuilder(16).build();
  c.top_users = {3, 7};

  platform::Story a = make_story(0, 3, /*submitted_at=*/10.0, 0.5);
  add_vote(a, 1, 11.0);
  add_vote(a, 2, 12.0);
  a.promoted_at = 12.0;
  a.phase = platform::StoryPhase::kFrontPage;
  c.add_story(a, Corpus::Section::kFrontPage);

  platform::Story b = make_story(1, 7, 100.0, 0.3);
  add_vote(b, 4, 101.0);
  c.add_story(b, Corpus::Section::kUpcoming);

  platform::Story d = make_story(2, 9, 200.0, 0.3);
  c.add_story(d, Corpus::Section::kUpcoming);
  return c;
}

TEST(Filters, SelectStoriesSpansBothSections) {
  const Corpus c = filter_fixture();
  const auto all = select_stories(c, [](const Story&) { return true; });
  EXPECT_EQ(all.size(), 3u);
}

TEST(Filters, SubmittedBetween) {
  const Corpus c = filter_fixture();
  const auto mid = select_stories(c, submitted_between(50.0, 150.0));
  ASSERT_EQ(mid.size(), 1u);
  EXPECT_EQ(mid[0].id, 1u);
  // Half-open interval: the boundary story at t=200 is excluded.
  EXPECT_EQ(select_stories(c, submitted_between(10.0, 200.0)).size(), 2u);
}

TEST(Filters, MinVotesExcludesSubmitterDigg) {
  const Corpus c = filter_fixture();
  // min_votes(1): at least one vote beyond the submitter's.
  const auto voted = select_stories(c, min_votes(1));
  EXPECT_EQ(voted.size(), 2u);
  const auto two = select_stories(c, min_votes(2));
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0].id, 0u);
}

TEST(Filters, ByTopUser) {
  const Corpus c = filter_fixture();
  EXPECT_EQ(select_stories(c, by_top_user(c, 2)).size(), 2u);
  const auto rank1 = select_stories(c, by_top_user(c, 1));
  ASSERT_EQ(rank1.size(), 1u);
  EXPECT_EQ(rank1[0].submitter, 3u);
}

TEST(Filters, Combinators) {
  const Corpus c = filter_fixture();
  const auto top_and_voted =
      select_stories(c, both(by_top_user(c, 2), min_votes(1)));
  EXPECT_EQ(top_and_voted.size(), 2u);
  const auto early_or_late = select_stories(
      c, either(submitted_between(0.0, 50.0), submitted_between(150.0, 250.0)));
  EXPECT_EQ(early_or_late.size(), 2u);
  const auto not_top = select_stories(c, negate(by_top_user(c, 2)));
  ASSERT_EQ(not_top.size(), 1u);
  EXPECT_EQ(not_top[0].submitter, 9u);
}

TEST(Filters, FilterCorpusKeepsSections) {
  const Corpus c = filter_fixture();
  const Corpus filtered = filter_corpus(c, min_votes(1));
  EXPECT_EQ(filtered.front_page.size(), 1u);
  EXPECT_EQ(filtered.upcoming.size(), 1u);
  EXPECT_EQ(filtered.top_users, c.top_users);
  EXPECT_EQ(filtered.network.node_count(), c.network.node_count());
  EXPECT_NO_THROW(validate(filtered));
}

TEST(Filters, EmptyResultIsValid) {
  const Corpus c = filter_fixture();
  const Corpus none = filter_corpus(c, [](const Story&) { return false; });
  EXPECT_EQ(none.story_count(), 0u);
}

}  // namespace
}  // namespace digg::data
