#include "src/runtime/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/dynamics/site_sim.h"
#include "src/stats/bootstrap.h"

namespace digg::runtime {
namespace {

/// Pins the default thread count for one scope, restoring resolution to
/// DIGG_THREADS / hardware on exit.
class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned threads) { set_default_threads(threads); }
  ~ThreadGuard() { set_default_threads(0); }
};

TEST(ThreadConfig, HardwareThreadsIsPositive) {
  EXPECT_GE(hardware_threads(), 1u);
}

TEST(ThreadConfig, SetDefaultThreadsOverrides) {
  ThreadGuard guard(3);
  EXPECT_EQ(default_threads(), 3u);
}

TEST(ThreadConfig, EnvVariableRespected) {
  set_default_threads(0);
  ASSERT_EQ(::setenv("DIGG_THREADS", "5", 1), 0);
  EXPECT_EQ(default_threads(), 5u);
  ASSERT_EQ(::setenv("DIGG_THREADS", "garbage", 1), 0);
  EXPECT_EQ(default_threads(), hardware_threads());
  ASSERT_EQ(::unsetenv("DIGG_THREADS"), 0);
  EXPECT_EQ(default_threads(), hardware_threads());
}

TEST(ThreadConfig, OverrideBeatsEnv) {
  ASSERT_EQ(::setenv("DIGG_THREADS", "5", 1), 0);
  {
    ThreadGuard guard(2);
    EXPECT_EQ(default_threads(), 2u);
  }
  EXPECT_EQ(default_threads(), 5u);
  ASSERT_EQ(::unsetenv("DIGG_THREADS"), 0);
}

TEST(ChunkLayout, CoversIndexSpaceDisjointly) {
  for (const std::size_t n : {0u, 1u, 7u, 256u, 1000u}) {
    for (const std::size_t grain : {0u, 1u, 3u, 64u, 5000u}) {
      const std::size_t chunks = detail::chunk_count_for(n, grain);
      std::size_t expect_begin = 0;
      for (std::size_t c = 0; c < chunks; ++c) {
        const auto [begin, end] = detail::chunk_bounds(n, chunks, c);
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LE(begin, end);
        expect_begin = end;
      }
      if (chunks > 0) {
        EXPECT_EQ(expect_begin, n);
      }
      if (n == 0) {
        EXPECT_EQ(chunks, 0u);
      }
    }
  }
}

TEST(ChunkLayout, IndependentOfThreadCount) {
  // The layout is a pure function of (n, grain); pinning different thread
  // counts must not change it.
  set_default_threads(4);
  const std::size_t a = detail::chunk_count_for(1000, 0);
  set_default_threads(1);
  const std::size_t b = detail::chunk_count_for(1000, 0);
  set_default_threads(0);
  EXPECT_EQ(a, b);
}

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  ThreadGuard guard(8);
  const std::size_t n = 10007;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(n, [&](std::size_t i) {
    visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelFor, ZeroIterationsIsANoop) {
  std::atomic<int> calls{0};
  parallel_for(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForRanges, RangesAreDisjointAndComplete) {
  ThreadGuard guard(4);
  const std::size_t n = 999;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_ranges(n, [&](std::size_t begin, std::size_t end) {
    EXPECT_LT(begin, end);
    for (std::size_t i = begin; i < end; ++i)
      visits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelMap, ResultsLandByIndex) {
  ThreadGuard guard(8);
  const std::size_t n = 4096;
  const std::vector<std::size_t> out =
      parallel_map<std::size_t>(n, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), n);
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(out[i], i * i);
}

TEST(ParallelMap, MoveOnlyResults) {
  ThreadGuard guard(4);
  const auto out = parallel_map<std::unique_ptr<int>>(
      100, [](std::size_t i) { return std::make_unique<int>(int(i)); });
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(*out[i], static_cast<int>(i));
}

TEST(ParallelReduce, MatchesSerialSum) {
  ThreadGuard guard(8);
  const std::size_t n = 5000;
  const auto sum = parallel_reduce<std::uint64_t>(
      n, 0, [](std::size_t i) { return static_cast<std::uint64_t>(i); },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n) * (n - 1) / 2);
}

TEST(ParallelReduce, FloatingPointBitIdenticalAcrossThreadCounts) {
  // Non-associative FP summation: identical results require an identical
  // combine order, which the fixed chunk layout guarantees.
  const std::size_t n = 100000;
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    return parallel_reduce<double>(
        n, 0.0, [](std::size_t i) { return 1.0 / (1.0 + double(i)); },
        [](double a, double b) { return a + b; });
  };
  const double t1 = run(1);
  const double t2 = run(2);
  const double t8 = run(8);
  EXPECT_EQ(t1, t2);  // exact, bit-for-bit
  EXPECT_EQ(t1, t8);
}

TEST(ParallelReduceRanges, VectorPartialsWithGrain) {
  ThreadGuard guard(8);
  const std::size_t n = 1000;
  ParallelOptions opts;
  opts.grain = 100;
  const auto hist = parallel_reduce_ranges<std::vector<std::size_t>>(
      n, std::vector<std::size_t>(10, 0),
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> partial(10, 0);
        for (std::size_t i = begin; i < end; ++i) ++partial[i % 10];
        return partial;
      },
      [](std::vector<std::size_t> acc, std::vector<std::size_t> partial) {
        for (std::size_t k = 0; k < acc.size(); ++k) acc[k] += partial[k];
        return acc;
      },
      opts);
  for (std::size_t k = 0; k < 10; ++k) EXPECT_EQ(hist[k], 100u);
}

TEST(Exceptions, LowestFailingChunkWins) {
  ThreadGuard guard(8);
  // Default layout maps each of the 100 indices to its own chunk, so the
  // lowest failing chunk is the lowest failing index.
  for (int repeat = 0; repeat < 5; ++repeat) {
    try {
      parallel_for(100, [&](std::size_t i) {
        if (i >= 37) throw std::runtime_error(std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_STREQ(e.what(), "37");
    }
  }
}

TEST(Exceptions, PoolSurvivesAndRunsAfterwards) {
  ThreadGuard guard(4);
  EXPECT_THROW(
      parallel_for(10, [](std::size_t) { throw std::logic_error("boom"); }),
      std::logic_error);
  std::atomic<int> calls{0};
  parallel_for(10, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 10);
}

TEST(Nesting, InnerCallsRunInline) {
  ThreadGuard guard(4);
  std::atomic<int> total{0};
  parallel_for(8, [&](std::size_t) {
    EXPECT_TRUE(in_parallel_region());
    // Nested call must complete inline without deadlocking the pool.
    parallel_for(16, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(total.load(), 8 * 16);
  EXPECT_FALSE(in_parallel_region());
}

TEST(Nesting, ReduceInsideForIsDeterministic) {
  auto run = [](unsigned threads) {
    ThreadGuard guard(threads);
    return parallel_map<double>(6, [](std::size_t outer) {
      return parallel_reduce<double>(
          1000, 0.0,
          [&](std::size_t i) { return 1.0 / (1.0 + double(outer + i)); },
          [](double a, double b) { return a + b; });
    });
  };
  EXPECT_EQ(run(1), run(8));
}

// ---------------------------------------------------------------------------
// End-to-end determinism: the refactored analysis layers must produce
// bit-identical results for any thread count.

const data::SyntheticCorpus& small_corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    // Large enough that the front page carries both label classes (the
    // interestingness threshold is an absolute vote count), small enough to
    // generate in well under a second.
    params.user_count = 40000;
    params.story_count = 400;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

TEST(EndToEnd, BootstrapIdenticalAcrossThreadCounts) {
  std::vector<double> data(500);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = 1.0 / (1.0 + double(i % 37));
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    stats::Rng rng(123);
    return stats::bootstrap_mean_ci(data, 800, 0.95, rng);
  };
  const stats::Interval a = run(1);
  const stats::Interval b = run(8);
  EXPECT_EQ(a.lo, b.lo);
  EXPECT_EQ(a.hi, b.hi);
  EXPECT_EQ(a.point, b.point);
  EXPECT_LT(a.lo, a.hi);
}

TEST(EndToEnd, Fig5PredictionIdenticalAcrossThreadCounts) {
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    stats::Rng rng(7);
    core::Fig5Params params;
    params.folds = 5;
    return core::fig5_prediction(small_corpus().corpus, params, rng);
  };
  const core::Fig5Result a = run(1);
  const core::Fig5Result b = run(8);
  EXPECT_EQ(a.cross_validation.pooled.tp, b.cross_validation.pooled.tp);
  EXPECT_EQ(a.cross_validation.pooled.tn, b.cross_validation.pooled.tn);
  EXPECT_EQ(a.cross_validation.pooled.fp, b.cross_validation.pooled.fp);
  EXPECT_EQ(a.cross_validation.pooled.fn, b.cross_validation.pooled.fn);
  ASSERT_EQ(a.cross_validation.per_fold.size(),
            b.cross_validation.per_fold.size());
  for (std::size_t f = 0; f < a.cross_validation.per_fold.size(); ++f) {
    EXPECT_EQ(a.cross_validation.per_fold[f].correct(),
              b.cross_validation.per_fold[f].correct());
    EXPECT_EQ(a.cross_validation.per_fold[f].total(),
              b.cross_validation.per_fold[f].total());
  }
  EXPECT_EQ(a.training_stories, b.training_stories);
  EXPECT_EQ(a.holdout_stories, b.holdout_stories);
  EXPECT_EQ(a.holdout.tp, b.holdout.tp);
  EXPECT_EQ(a.holdout.fp, b.holdout.fp);
  EXPECT_EQ(a.digg_promoted, b.digg_promoted);
  EXPECT_EQ(a.ours_predicted, b.ours_predicted);
  EXPECT_EQ(a.predictor.tree().render(), b.predictor.tree().render());
}

TEST(EndToEnd, Fig3InfluenceIdenticalAcrossThreadCounts) {
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    return core::fig3a_influence(small_corpus().corpus);
  };
  const core::Fig3aResult a = run(1);
  const core::Fig3aResult b = run(8);
  EXPECT_EQ(a.at_submission, b.at_submission);
  EXPECT_EQ(a.after_10, b.after_10);
  EXPECT_EQ(a.after_20, b.after_20);
  EXPECT_EQ(a.fraction_visible_to_200_after_10,
            b.fraction_visible_to_200_after_10);
}

TEST(EndToEnd, SiteReplicatesIdenticalAcrossThreadCounts) {
  const auto& net = small_corpus().corpus.network;
  stats::Rng pop_rng(5);
  platform::PopulationParams pop_params;
  pop_params.user_count = net.node_count();
  const auto population = platform::generate_population(pop_params, pop_rng);
  dynamics::SiteParams site;
  site.submissions_per_day = 120.0;
  site.duration = 0.25 * platform::kMinutesPerDay;
  site.step = 2.0;
  const dynamics::TraitsSampler traits = [](platform::UserId,
                                            stats::Rng& rng) {
    dynamics::StoryTraits t;
    t.general = rng.uniform(0.05, 0.8);
    t.community = 0.3;
    return t;
  };
  const dynamics::PlatformFactory factory = [&] {
    return std::make_unique<platform::Platform>(
        net, population, platform::make_june2006_policy());
  };
  auto run = [&](unsigned threads) {
    ThreadGuard guard(threads);
    const auto reps = dynamics::run_site_replicates(factory, site, traits,
                                                    stats::Rng(31), 4);
    std::vector<std::size_t> signature;
    for (const auto& rep : reps) {
      signature.push_back(rep.result.submissions);
      signature.push_back(rep.result.promotions);
      signature.push_back(rep.result.total_votes);
      signature.push_back(rep.platform->story_count());
    }
    return signature;
  };
  const auto a = run(1);
  const auto b = run(8);
  EXPECT_EQ(a, b);
  // Replicates draw from distinct substreams: not all runs identical.
  EXPECT_FALSE(a[0] == a[4] && a[1] == a[5] && a[2] == a[6] &&
               a[4] == a[8] && a[5] == a[9] && a[6] == a[10]);
}

TEST(EndToEnd, SiteReplicatesRejectNullFactory) {
  dynamics::SiteParams site;
  EXPECT_THROW(dynamics::run_site_replicates(nullptr, site, nullptr,
                                             stats::Rng(1), 2),
               std::invalid_argument);
}

}  // namespace
}  // namespace digg::runtime
