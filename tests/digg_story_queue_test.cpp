#include <gtest/gtest.h>

#include "src/digg/queue.h"
#include "src/digg/story.h"

namespace digg::platform {
namespace {

TEST(Story, MakeStoryRecordsSubmitterDigg) {
  const Story s = make_story(1, 42, 100.0, 0.5);
  EXPECT_EQ(s.id, 1u);
  EXPECT_EQ(s.submitter, 42u);
  ASSERT_EQ(s.vote_count(), 1u);
  EXPECT_EQ(s.voters.front(), 42u);
  EXPECT_DOUBLE_EQ(s.times.front(), 100.0);
  EXPECT_EQ(s.phase, StoryPhase::kUpcoming);
  EXPECT_FALSE(s.promoted());
}

TEST(Story, MakeStoryRejectsBadQuality) {
  EXPECT_THROW(make_story(0, 0, 0.0, -0.1), std::invalid_argument);
  EXPECT_THROW(make_story(0, 0, 0.0, 1.1), std::invalid_argument);
}

TEST(Story, AddVoteAppendsChronologically) {
  Story s = make_story(0, 1, 0.0, 0.5);
  add_vote(s, 2, 5.0);
  add_vote(s, 3, 5.0);  // equal timestamps allowed (same simulation step)
  add_vote(s, 4, 9.0);
  EXPECT_EQ(s.vote_count(), 4u);
  EXPECT_THROW(add_vote(s, 5, 8.0), std::invalid_argument);
}

TEST(Story, AddVoteRejectsDuplicateVoter) {
  Story s = make_story(0, 1, 0.0, 0.5);
  add_vote(s, 2, 5.0);
  EXPECT_THROW(add_vote(s, 2, 6.0), std::invalid_argument);
  EXPECT_THROW(add_vote(s, 1, 6.0), std::invalid_argument);  // submitter
}

TEST(Story, FirstVoteMustBeSubmitter) {
  Story s;
  s.submitter = 7;
  EXPECT_THROW(add_vote(s, 8, 0.0), std::invalid_argument);
  add_vote(s, 7, 0.0);
  EXPECT_EQ(s.vote_count(), 1u);
}

TEST(Story, HasVoted) {
  Story s = make_story(0, 1, 0.0, 0.5);
  add_vote(s, 2, 1.0);
  EXPECT_TRUE(has_voted(s, 1));
  EXPECT_TRUE(has_voted(s, 2));
  EXPECT_FALSE(has_voted(s, 3));
}

TEST(Story, EarlyVotesSkipSubmitter) {
  Story s = make_story(0, 1, 0.0, 0.5);
  for (UserId u = 2; u <= 15; ++u) add_vote(s, u, static_cast<Minutes>(u));
  const auto early = early_votes(s, 10);
  ASSERT_EQ(early.size(), 10u);
  EXPECT_EQ(early.front(), 2u);
  EXPECT_EQ(early.back(), 11u);
}

TEST(Story, EarlyVotesTruncatesWhenShort) {
  Story s = make_story(0, 1, 0.0, 0.5);
  add_vote(s, 2, 1.0);
  EXPECT_EQ(early_votes(s, 10).size(), 1u);
  Story empty;
  EXPECT_TRUE(early_votes(empty, 10).empty());
}

TEST(Story, VotersInOrder) {
  Story s = make_story(0, 5, 0.0, 0.5);
  add_vote(s, 9, 1.0);
  add_vote(s, 3, 2.0);
  const auto vs = voters(s);
  EXPECT_EQ(std::vector<UserId>(vs.begin(), vs.end()),
            (std::vector<UserId>{5, 9, 3}));
}

TEST(Story, VotesBeforeCutoff) {
  Story s = make_story(0, 1, 0.0, 0.5);
  add_vote(s, 2, 10.0);
  add_vote(s, 3, 20.0);
  EXPECT_EQ(s.votes_before(0.0), 0u);
  EXPECT_EQ(s.votes_before(10.0), 1u);   // strictly before
  EXPECT_EQ(s.votes_before(10.5), 2u);
  EXPECT_EQ(s.votes_before(1000.0), 3u);
}

TEST(Listing, NewestFirstOrdering) {
  Listing l;
  l.push_front(1);
  l.push_front(2);
  l.push_front(3);
  EXPECT_EQ(l.items(), (std::vector<StoryId>{3, 2, 1}));
  EXPECT_EQ(l.position(3), 0u);
  EXPECT_EQ(l.position(1), 2u);
}

TEST(Listing, RemoveAndContains) {
  Listing l;
  l.push_front(1);
  l.push_front(2);
  EXPECT_TRUE(l.contains(1));
  l.remove(1);
  EXPECT_FALSE(l.contains(1));
  EXPECT_EQ(l.size(), 1u);
  l.remove(99);  // no-op
  EXPECT_EQ(l.size(), 1u);
}

TEST(Listing, PositionOfMissingIsNpos) {
  Listing l;
  EXPECT_EQ(l.position(5), Listing::npos);
}

TEST(Listing, PagesOfFifteen) {
  Listing l;
  for (StoryId id = 0; id < 40; ++id) l.push_front(id);
  const auto page0 = l.page(0);
  ASSERT_EQ(page0.size(), kStoriesPerPage);
  EXPECT_EQ(page0.front(), 39u);  // newest on top
  const auto page2 = l.page(2);
  EXPECT_EQ(page2.size(), 10u);
  EXPECT_TRUE(l.page(3).empty());
}

TEST(Listing, FirstPagesClampsToSize) {
  Listing l;
  for (StoryId id = 0; id < 20; ++id) l.push_front(id);
  EXPECT_EQ(l.first_pages(1).size(), 15u);
  EXPECT_EQ(l.first_pages(5).size(), 20u);
}

}  // namespace
}  // namespace digg::platform
