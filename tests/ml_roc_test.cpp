#include "src/ml/roc.h"

#include <gtest/gtest.h>

namespace digg::ml {
namespace {

std::vector<Scored> perfect_ranking() {
  return {{0.9, true}, {0.8, true}, {0.3, false}, {0.1, false}};
}

std::vector<Scored> inverted_ranking() {
  return {{0.9, false}, {0.8, false}, {0.3, true}, {0.1, true}};
}

TEST(RocAuc, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(roc_auc(perfect_ranking()), 1.0);
}

TEST(RocAuc, InvertedRankingIsZero) {
  EXPECT_DOUBLE_EQ(roc_auc(inverted_ranking()), 0.0);
}

TEST(RocAuc, ConstantScoresAreChance) {
  const std::vector<Scored> scored = {
      {0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 0.5);
}

TEST(RocAuc, TiesGetHalfCredit) {
  // One tied pair (pos/neg at 0.5) among otherwise perfect ranking:
  // AUC = (pairs won + 0.5*ties) / total pairs = (3 + 0.5) / 4.
  const std::vector<Scored> scored = {
      {0.9, true}, {0.5, true}, {0.5, false}, {0.1, false}};
  EXPECT_DOUBLE_EQ(roc_auc(scored), 3.5 / 4.0);
}

TEST(RocAuc, RequiresBothClasses) {
  EXPECT_THROW(roc_auc({{0.5, true}}), std::invalid_argument);
  EXPECT_THROW(roc_auc({{0.5, false}, {0.2, false}}), std::invalid_argument);
}

TEST(RocCurve, EndpointsAndMonotonicity) {
  const auto curve = roc_curve(perfect_ranking());
  ASSERT_GE(curve.size(), 2u);
  EXPECT_DOUBLE_EQ(curve.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.front().fpr, 0.0);
  EXPECT_DOUBLE_EQ(curve.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(curve.back().fpr, 1.0);
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].tpr, curve[i - 1].tpr);
    EXPECT_GE(curve[i].fpr, curve[i - 1].fpr);
    EXPECT_LE(curve[i].threshold, curve[i - 1].threshold);
  }
}

TEST(RocCurve, TiedScoresProduceOnePoint) {
  const std::vector<Scored> scored = {
      {0.5, true}, {0.5, false}, {0.5, true}, {0.5, false}};
  const auto curve = roc_curve(scored);
  ASSERT_EQ(curve.size(), 2u);  // start point + one threshold
  EXPECT_DOUBLE_EQ(curve.back().precision, 0.5);
}

TEST(RocCurve, PrecisionAtEachThreshold) {
  const auto curve = roc_curve(perfect_ranking());
  // After consuming the two 0.9/0.8 positives: precision 1.0.
  bool saw_perfect_precision_at_full_recall = false;
  for (const RocPoint& p : curve) {
    if (p.tpr == 1.0 && p.fpr == 0.0)
      saw_perfect_precision_at_full_recall = p.precision == 1.0;
  }
  EXPECT_TRUE(saw_perfect_precision_at_full_recall);
}

TEST(PrAuc, PerfectRankingIsOne) {
  EXPECT_DOUBLE_EQ(pr_auc(perfect_ranking()), 1.0);
}

TEST(PrAuc, RandomScoresNearPositiveRate) {
  // For uninformative scores, PR-AUC tends toward the positive base rate.
  std::vector<Scored> scored;
  for (int i = 0; i < 400; ++i) {
    scored.push_back({static_cast<double>((i * 7919) % 1000),
                      i % 4 == 0});  // 25% positives, score independent
  }
  const double auc = pr_auc(scored);
  EXPECT_NEAR(auc, 0.25, 0.1);
}

TEST(PrecisionAtRecall, FindsBestOperatingPoint) {
  const std::vector<Scored> scored = {
      {0.9, true}, {0.8, false}, {0.7, true}, {0.1, false}};
  // recall >= 0.5 reachable at threshold 0.9 with precision 1.0.
  EXPECT_DOUBLE_EQ(precision_at_recall(scored, 0.5), 1.0);
  // recall >= 1.0 requires including the 0.8 negative: precision 2/3.
  EXPECT_DOUBLE_EQ(precision_at_recall(scored, 1.0), 2.0 / 3.0);
}

TEST(PrecisionAtRecall, RejectsBadRecall) {
  EXPECT_THROW(precision_at_recall(perfect_ranking(), -0.1),
               std::invalid_argument);
  EXPECT_THROW(precision_at_recall(perfect_ranking(), 1.1),
               std::invalid_argument);
}

}  // namespace
}  // namespace digg::ml
