#include "src/graph/centrality.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/graph/generators.h"

namespace digg::graph {
namespace {

TEST(PageRank, SumsToOne) {
  stats::Rng rng(1);
  const Digraph g = erdos_renyi(200, 0.03, rng);
  const auto pr = pagerank(g);
  const double total = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(PageRank, WatchedHubScoresHighest) {
  // Everyone watches node 0; node 0 watches node 1.
  DigraphBuilder b(10);
  for (NodeId u = 1; u < 10; ++u) b.add_follow(u, 0);
  b.add_follow(0, 1);
  const auto pr = pagerank(b.build());
  for (NodeId u = 2; u < 10; ++u) EXPECT_GT(pr[0], pr[u]);
  EXPECT_GT(pr[1], pr[2]);  // 1 inherits 0's rank
}

TEST(PageRank, SymmetricRingIsUniform) {
  DigraphBuilder b(8);
  for (NodeId u = 0; u < 8; ++u)
    b.add_follow(u, static_cast<NodeId>((u + 1) % 8));
  const auto pr = pagerank(b.build());
  for (double p : pr) EXPECT_NEAR(p, 1.0 / 8.0, 1e-9);
}

TEST(PageRank, DanglingMassRedistributed) {
  // 0 -> 1, 1 dangles. Ranks must still sum to 1.
  DigraphBuilder b(3);
  b.add_follow(0, 1);
  const auto pr = pagerank(b.build());
  EXPECT_NEAR(pr[0] + pr[1] + pr[2], 1.0, 1e-9);
  EXPECT_GT(pr[1], pr[0]);
}

TEST(PageRank, EmptyGraphAndBadDamping) {
  EXPECT_TRUE(pagerank(DigraphBuilder(0).build()).empty());
  PageRankParams bad;
  bad.damping = 1.0;
  EXPECT_THROW(pagerank(DigraphBuilder(3).build(), bad),
               std::invalid_argument);
}

TEST(Betweenness, PathCenterIsHighest) {
  // Directed path 0 -> 1 -> 2 -> 3 -> 4: node 2 lies on the most paths.
  DigraphBuilder b;
  for (NodeId u = 0; u < 4; ++u) b.add_follow(u, u + 1);
  const auto bc = betweenness(b.build());
  EXPECT_GT(bc[2], bc[1] - 1e-12);
  EXPECT_GT(bc[2], bc[3] - 1e-12);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  // Exact values: node 1 on paths 0->{2,3,4} = 3; node 2 on 0,1 -> 3,4 = 4.
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
}

TEST(Betweenness, StarCenterCarriesAllPairs) {
  // Spokes connected through the hub: u -> hub -> v for all u,v.
  DigraphBuilder b(5);
  for (NodeId u = 1; u < 5; ++u) {
    b.add_follow(u, 0);
    b.add_follow(0, u);
  }
  const auto bc = betweenness(b.build());
  // Hub sits on paths between each ordered spoke pair: 4*3 = 12.
  EXPECT_DOUBLE_EQ(bc[0], 12.0);
  for (NodeId u = 1; u < 5; ++u) EXPECT_DOUBLE_EQ(bc[u], 0.0);
}

TEST(Betweenness, SplitShortestPathsShareCredit) {
  // Two equal-length routes 0->1->3 and 0->2->3: nodes 1,2 get 0.5 each.
  DigraphBuilder b(4);
  b.add_follow(0, 1);
  b.add_follow(0, 2);
  b.add_follow(1, 3);
  b.add_follow(2, 3);
  const auto bc = betweenness(b.build());
  EXPECT_DOUBLE_EQ(bc[1], 0.5);
  EXPECT_DOUBLE_EQ(bc[2], 0.5);
}

TEST(Betweenness, SampledApproximationTracksExact) {
  stats::Rng rng(5);
  const Digraph g = erdos_renyi(120, 0.05, rng);
  const auto exact = betweenness(g, 1);
  const auto sampled = betweenness(g, 4);
  // Totals should agree within sampling error.
  const double sum_exact = std::accumulate(exact.begin(), exact.end(), 0.0);
  const double sum_sampled =
      std::accumulate(sampled.begin(), sampled.end(), 0.0);
  EXPECT_NEAR(sum_sampled / sum_exact, 1.0, 0.35);
}

TEST(Betweenness, RejectsZeroStride) {
  EXPECT_THROW(betweenness(DigraphBuilder(2).build(), 0),
               std::invalid_argument);
}

TEST(CoreNumbers, CliquePlusTailDecomposesCorrectly) {
  // 4-clique (mutual) with a pendant chain 4-5.
  DigraphBuilder b(6);
  for (NodeId u = 0; u < 4; ++u)
    for (NodeId v = 0; v < 4; ++v)
      if (u != v) b.add_follow(u, v);
  b.add_follow(4, 0);
  b.add_follow(5, 4);
  const auto core = core_numbers(b.build());
  for (NodeId u = 0; u < 4; ++u) EXPECT_EQ(core[u], 3u);
  EXPECT_EQ(core[4], 1u);
  EXPECT_EQ(core[5], 1u);
  EXPECT_EQ(degeneracy(b.build()), 3u);
}

TEST(CoreNumbers, RingIsTwoCore) {
  DigraphBuilder b(6);
  for (NodeId u = 0; u < 6; ++u)
    b.add_follow(u, static_cast<NodeId>((u + 1) % 6));
  const auto core = core_numbers(b.build());
  for (std::size_t c : core) EXPECT_EQ(c, 2u);  // undirected ring degree 2
}

TEST(CoreNumbers, IsolatedNodesAreZeroCore) {
  const auto core = core_numbers(DigraphBuilder(4).build());
  for (std::size_t c : core) EXPECT_EQ(c, 0u);
  EXPECT_EQ(degeneracy(DigraphBuilder(0).build()), 0u);
}

TEST(CoreNumbers, PreferentialAttachmentHasDeepCore) {
  stats::Rng rng(7);
  PreferentialAttachmentParams params;
  params.node_count = 2000;
  const Digraph g = preferential_attachment(params, rng);
  const auto core = core_numbers(g);
  // Early (top) users sit deeper in the core than the typical user.
  std::size_t head = 0;
  for (NodeId u = 0; u < 50; ++u) head = std::max(head, core[u]);
  std::vector<std::size_t> sorted = core;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t median = sorted[sorted.size() / 2];
  EXPECT_GT(head, median);
  EXPECT_GE(head, 4u);
  EXPECT_EQ(degeneracy(g), *std::max_element(core.begin(), core.end()));
}

}  // namespace
}  // namespace digg::graph
