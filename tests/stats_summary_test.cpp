#include "src/stats/summary.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace digg::stats {
namespace {

TEST(Summarize, EmptyGivesZeroedSummary) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const Summary s = summarize({7.0});
  EXPECT_EQ(s.n, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.0);
  EXPECT_DOUBLE_EQ(s.median, 7.0);
  EXPECT_DOUBLE_EQ(s.min, 7.0);
  EXPECT_DOUBLE_EQ(s.max, 7.0);
  EXPECT_DOUBLE_EQ(s.trimmed_lo, 7.0);
  EXPECT_DOUBLE_EQ(s.trimmed_hi, 7.0);
}

TEST(Summarize, KnownSample) {
  const Summary s = summarize({4.0, 1.0, 3.0, 2.0, 5.0});
  EXPECT_EQ(s.n, 5u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
  // Trimmed range drops exactly the single extreme on each side (Fig. 4's
  // error bars).
  EXPECT_DOUBLE_EQ(s.trimmed_lo, 2.0);
  EXPECT_DOUBLE_EQ(s.trimmed_hi, 4.0);
}

TEST(Summarize, StddevMatchesManual) {
  const Summary s = summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Quantile, MedianOfEvenSampleInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({1.0, 2.0, 3.0, 4.0}, 0.5), 2.5);
}

TEST(Quantile, ExtremesAreMinMax) {
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({3.0, 1.0, 2.0}, 1.0), 3.0);
}

TEST(Quantile, RejectsBadInput) {
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, -0.1), std::invalid_argument);
  EXPECT_THROW(quantile({1.0}, 1.1), std::invalid_argument);
}

TEST(MeanStddev, EdgeCases) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(stddev({1.0}), 0.0);
}

TEST(Pearson, PerfectPositiveCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {2, 4, 6, 8}), 1.0, 1e-12);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3, 4}, {8, 6, 4, 2}), -1.0, 1e-12);
}

TEST(Pearson, RejectsDegenerateInput) {
  EXPECT_THROW(pearson({1, 2}, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(pearson({1}, {1}), std::invalid_argument);
  EXPECT_THROW(pearson({1, 1, 1}, {1, 2, 3}), std::invalid_argument);
}

TEST(Spearman, MonotoneNonlinearIsPerfect) {
  // y = x^3 is monotone: rank correlation 1 even though Pearson < 1.
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(Spearman, HandlesTiesWithAverageRanks) {
  const std::vector<double> x = {1, 2, 2, 3};
  const std::vector<double> y = {10, 20, 20, 30};
  EXPECT_NEAR(spearman(x, y), 1.0, 1e-12);
}

TEST(LeastSquares, RecoversExactLine) {
  const std::vector<double> x = {0, 1, 2, 3};
  const std::vector<double> y = {1, 3, 5, 7};  // y = 1 + 2x
  const LinearFit fit = least_squares(x, y);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(LeastSquares, NoisyFitHasR2BelowOne) {
  const std::vector<double> x = {0, 1, 2, 3, 4};
  const std::vector<double> y = {0.9, 3.2, 4.8, 7.1, 8.6};
  const LinearFit fit = least_squares(x, y);
  EXPECT_GT(fit.r2, 0.98);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_NEAR(fit.slope, 2.0, 0.2);
}

TEST(LeastSquares, RejectsConstantX) {
  EXPECT_THROW(least_squares({1, 1, 1}, {1, 2, 3}), std::invalid_argument);
}

}  // namespace
}  // namespace digg::stats
