#include "src/core/influence.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::core {
namespace {

using platform::add_vote;
using platform::make_story;
using platform::Story;

// fans(0) = {1,2,3}; fans(1) = {4,5}; fans(4) = {0}.
graph::Digraph network() {
  graph::DigraphBuilder b(8);
  b.add_fan(0, 1);
  b.add_fan(0, 2);
  b.add_fan(0, 3);
  b.add_fan(1, 4);
  b.add_fan(1, 5);
  b.add_fan(4, 0);
  return b.build();
}

TEST(InfluenceAfter, AtSubmissionEqualsSubmitterFans) {
  const Story s = make_story(0, 0, 0.0, 0.5);
  EXPECT_EQ(influence_after(s, network(), 1), 3u);
}

TEST(InfluenceAfter, GrowsWithVotersButExcludesThem) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  // After 1 votes: watchers = {2,3} (1 left) + fans(1) = {4,5} -> 4.
  EXPECT_EQ(influence_after(s, network(), 2), 4u);
}

TEST(InfluenceAfter, VotersWhoAlreadyVotedNotCounted) {
  Story s = make_story(0, 4, 0.0, 0.5);  // submitter 4, fans(4) = {0}
  add_vote(s, 0, 1.0);                   // 0 votes; fans(0) = {1,2,3}
  // Watchers: fans(4)\{voters} = {} plus fans(0) = {1,2,3}.
  EXPECT_EQ(influence_after(s, network(), 2), 3u);
}

TEST(InfluenceProfile, ChecksMultipleCheckpointsIncrementally) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  add_vote(s, 6, 2.0);  // no fans
  const auto profile = influence_profile(s, network(), {1, 2, 3, 50});
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_EQ(profile[0], influence_after(s, network(), 1));
  EXPECT_EQ(profile[1], influence_after(s, network(), 2));
  EXPECT_EQ(profile[2], influence_after(s, network(), 3));
  EXPECT_EQ(profile[3], profile[2]);  // saturates past the vote record
}

TEST(InfluenceProfile, RejectsUnsortedCheckpoints) {
  const Story s = make_story(0, 0, 0.0, 0.5);
  EXPECT_THROW(influence_profile(s, network(), {5, 1}), std::invalid_argument);
}

TEST(InfluenceProfile, ZeroCheckpointGivesZero) {
  const Story s = make_story(0, 0, 0.0, 0.5);
  const auto profile = influence_profile(s, network(), {0, 1});
  EXPECT_EQ(profile[0], 0u);
  EXPECT_EQ(profile[1], 3u);
}

TEST(Influence, DisconnectedSubmitterHasZeroInfluence) {
  const Story s = make_story(0, 7, 0.0, 0.5);
  EXPECT_EQ(influence_after(s, network(), 1), 0u);
}

}  // namespace
}  // namespace digg::core
