#include "src/ml/arff.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace digg::ml {
namespace {

namespace fs = std::filesystem;

Dataset mixed_dataset() {
  Dataset d({{"v10", AttributeKind::kNumeric, {}},
             {"color", AttributeKind::kNominal, {"red", "blue"}}},
            {"no", "yes"});
  d.add({3.0, 0.0}, 1);
  d.add({7.5, 1.0}, 0);
  d.add({kMissing, 1.0}, 1);
  d.add({2.0, kMissing}, 0);
  return d;
}

class ArffTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = fs::temp_directory_path() /
            (std::string("digg_arff_") +
             ::testing::UnitTest::GetInstance()->current_test_info()->name() +
             ".arff");
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }
  fs::path path_;
};

TEST_F(ArffTest, WriteContainsHeaderAndData) {
  std::ostringstream os;
  write_arff(mixed_dataset(), "digg_stories", os);
  const std::string out = os.str();
  EXPECT_NE(out.find("@RELATION digg_stories"), std::string::npos);
  EXPECT_NE(out.find("@ATTRIBUTE v10 NUMERIC"), std::string::npos);
  EXPECT_NE(out.find("@ATTRIBUTE color {red,blue}"), std::string::npos);
  EXPECT_NE(out.find("@ATTRIBUTE class {no,yes}"), std::string::npos);
  EXPECT_NE(out.find("@DATA"), std::string::npos);
  EXPECT_NE(out.find("3,red,yes"), std::string::npos);
  EXPECT_NE(out.find("?,blue,yes"), std::string::npos);
  EXPECT_NE(out.find("2,?,no"), std::string::npos);
}

TEST_F(ArffTest, RoundTripPreservesEverything) {
  const Dataset original = mixed_dataset();
  save_arff(original, "roundtrip", path_);
  const Dataset loaded = load_arff(path_);

  ASSERT_EQ(loaded.size(), original.size());
  ASSERT_EQ(loaded.attribute_count(), original.attribute_count());
  EXPECT_EQ(loaded.attribute(0).name, "v10");
  EXPECT_EQ(loaded.attribute(1).values,
            (std::vector<std::string>{"red", "blue"}));
  EXPECT_EQ(loaded.class_names(), original.class_names());
  for (std::size_t i = 0; i < original.size(); ++i) {
    EXPECT_EQ(loaded.label(i), original.label(i));
    for (std::size_t a = 0; a < original.attribute_count(); ++a) {
      if (is_missing(original.value(i, a))) {
        EXPECT_TRUE(is_missing(loaded.value(i, a)));
      } else {
        EXPECT_DOUBLE_EQ(loaded.value(i, a), original.value(i, a));
      }
    }
  }
}

TEST_F(ArffTest, LoadsWekaStyleCommentsAndCase) {
  std::ofstream(path_) << "% a comment\n"
                       << "@relation test\n\n"
                       << "@attribute x numeric\n"
                       << "@attribute class {a,b}\n"
                       << "@data\n"
                       << "% another comment\n"
                       << "1.5,a\n"
                       << "2.5,b\n";
  const Dataset d = load_arff(path_);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.value(0, 0), 1.5);
  EXPECT_EQ(d.label(1), 1u);
}

TEST_F(ArffTest, RejectsMalformedFiles) {
  std::ofstream(path_) << "@relation x\n@attribute x numeric\n@data\n1\n";
  // Only one attribute: no class.
  EXPECT_THROW(load_arff(path_), std::runtime_error);

  std::ofstream(path_) << "@relation x\n@attribute x numeric\n"
                       << "@attribute class {a,b}\n@data\n1,c\n";
  EXPECT_THROW(load_arff(path_), std::runtime_error);  // unknown class

  std::ofstream(path_) << "@relation x\n@attribute x numeric\n"
                       << "@attribute class {a,b}\n@data\noops,a\n";
  EXPECT_THROW(load_arff(path_), std::runtime_error);  // bad numeric

  std::ofstream(path_) << "@relation x\n@attribute x numeric\n"
                       << "@attribute y numeric\n@data\n1,2\n";
  EXPECT_THROW(load_arff(path_), std::runtime_error);  // numeric class

  std::ofstream(path_) << "bogus\n";
  EXPECT_THROW(load_arff(path_), std::runtime_error);

  EXPECT_THROW(load_arff(path_ / "nonexistent"), std::runtime_error);
}

TEST_F(ArffTest, FieldCountMismatchRejected) {
  std::ofstream(path_) << "@relation x\n@attribute x numeric\n"
                       << "@attribute class {a,b}\n@data\n1,2,a\n";
  EXPECT_THROW(load_arff(path_), std::runtime_error);
}

}  // namespace
}  // namespace digg::ml
