#include "src/data/corpus.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::data {
namespace {

using platform::add_vote;
using platform::make_story;

Corpus tiny_corpus() {
  Corpus c;
  graph::DigraphBuilder b(10);
  b.add_fan(0, 1);
  c.network = b.build();

  platform::Story fp = make_story(0, 0, 0.0, 0.5);
  add_vote(fp, 1, 1.0);
  add_vote(fp, 2, 2.0);
  fp.promoted_at = 2.0;
  fp.phase = platform::StoryPhase::kFrontPage;
  c.add_story(fp, Corpus::Section::kFrontPage);

  platform::Story up = make_story(1, 3, 5.0, 0.2);
  add_vote(up, 4, 6.0);
  c.add_story(up, Corpus::Section::kUpcoming);

  c.top_users = {0, 3, 1};
  return c;
}

// Vote columns are immutable through the corpus views, so the negative
// validate() cases append a story whose columns were built raw (bypassing
// add_vote's invariant checks).
void add_bad_story(Corpus& c, void (*corrupt)(platform::Story&)) {
  platform::Story bad = make_story(2, 5, 0.0, 0.5);
  corrupt(bad);
  c.add_story(bad, Corpus::Section::kUpcoming);
}

TEST(Corpus, CountsAndRanks) {
  const Corpus c = tiny_corpus();
  EXPECT_EQ(c.user_count(), 10u);
  EXPECT_EQ(c.story_count(), 2u);
  EXPECT_EQ(c.rank_of(0), 0u);
  EXPECT_EQ(c.rank_of(1), 2u);
  EXPECT_EQ(c.rank_of(9), Corpus::npos);
  EXPECT_TRUE(c.is_top_user(0, 1));
  EXPECT_FALSE(c.is_top_user(3, 1));
  EXPECT_TRUE(c.is_top_user(3, 2));
  EXPECT_FALSE(c.is_top_user(9, 100));
}

TEST(Corpus, ValidatePassesOnGoodCorpus) {
  EXPECT_NO_THROW(validate(tiny_corpus()));
}

TEST(Corpus, ValidateCatchesMissingPromotion) {
  Corpus c = tiny_corpus();
  c.front_page[0].promoted_at.reset();
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesPromotedUpcoming) {
  Corpus c = tiny_corpus();
  c.upcoming[0].promoted_at = 10.0;
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesSubmitterNotFirst) {
  Corpus c = tiny_corpus();
  add_bad_story(c, [](platform::Story& s) { s.voters[0] = 7; });
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesDuplicateVoter) {
  Corpus c = tiny_corpus();
  add_bad_story(c, [](platform::Story& s) {
    s.voters.insert(s.voters.end(), {6, 6});
    s.times.insert(s.times.end(), {1.0, 2.0});
  });
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesOutOfOrderVotes) {
  Corpus c = tiny_corpus();
  add_bad_story(c, [](platform::Story& s) {
    s.voters.insert(s.voters.end(), {6, 7});
    s.times.insert(s.times.end(), {2.0, 1.0});
  });
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesVoterOutsideNetwork) {
  Corpus c = tiny_corpus();
  add_bad_story(c, [](platform::Story& s) {
    s.voters.push_back(99);
    s.times.push_back(1.0);
  });
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesEmptyVotes) {
  Corpus c = tiny_corpus();
  add_bad_story(c, [](platform::Story& s) {
    s.voters.clear();
    s.times.clear();
  });
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(Corpus, ValidateCatchesBadTopUser) {
  Corpus c = tiny_corpus();
  c.top_users.push_back(99);
  EXPECT_THROW(validate(c), std::runtime_error);
}

TEST(UserActivity, CountsFrontPageOnly) {
  const Corpus c = tiny_corpus();
  const UserActivity act = user_activity(c);
  EXPECT_EQ(act.submissions[0], 1u);
  EXPECT_EQ(act.submissions[3], 0u);  // upcoming submissions excluded
  EXPECT_EQ(act.votes[0], 1u);        // submitter digg counts as a vote
  EXPECT_EQ(act.votes[1], 1u);
  EXPECT_EQ(act.votes[4], 0u);        // only voted on an upcoming story
}

TEST(FinalVotes, ExtractsCounts) {
  const Corpus c = tiny_corpus();
  const std::vector<double> votes = final_votes(c.front_page);
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_DOUBLE_EQ(votes[0], 3.0);
}

}  // namespace
}  // namespace digg::data
