#include "src/ml/baseline.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/rng.h"

namespace digg::ml {
namespace {

Dataset separable(std::size_t per_class = 20) {
  Dataset d({{"x", AttributeKind::kNumeric, {}},
             {"noise", AttributeKind::kNumeric, {}}},
            {"no", "yes"});
  stats::Rng rng(5);
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.uniform(0.0, 1.0), rng.uniform(0.0, 1.0)}, 0);
    d.add({rng.uniform(2.0, 3.0), rng.uniform(0.0, 1.0)}, 1);
  }
  return d;
}

TEST(MajorityClassifier, PredictsDominantClass) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  d.add({1.0}, 1);
  d.add({2.0}, 1);
  d.add({3.0}, 0);
  const MajorityClassifier m = MajorityClassifier::train(d);
  EXPECT_EQ(m.klass(), 1u);
  EXPECT_EQ(m.predict({42.0}), 1u);
}

TEST(MajorityClassifier, RejectsEmpty) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  EXPECT_THROW(MajorityClassifier::train(d), std::invalid_argument);
}

TEST(DecisionStump, FindsDiscriminativeAttributeAndThreshold) {
  const Dataset d = separable();
  const DecisionStump s = DecisionStump::train(d);
  EXPECT_EQ(s.attribute(), 0u);
  EXPECT_GT(s.threshold(), 1.0);
  EXPECT_LT(s.threshold(), 2.0);
  EXPECT_EQ(s.predict({0.5, 0.9}), 0u);
  EXPECT_EQ(s.predict({2.5, 0.1}), 1u);
}

TEST(DecisionStump, MissingValueGetsMajority) {
  const Dataset d = separable();
  const DecisionStump s = DecisionStump::train(d);
  const std::size_t majority = d.majority_class();
  EXPECT_EQ(s.predict({kMissing, 0.5}), majority);
}

TEST(DecisionStump, ConstantLabelsAreTrivial) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  d.add({1.0}, 1);
  d.add({2.0}, 1);
  const DecisionStump s = DecisionStump::train(d);
  EXPECT_EQ(s.predict({1.5}), 1u);
}

TEST(LogisticRegression, SeparatesLinearlySeparableData) {
  const Dataset d = separable(40);
  const LogisticRegression m = LogisticRegression::train(d);
  int correct = 0;
  for (std::size_t i = 0; i < d.size(); ++i)
    if (m.predict(d.row(i)) == d.label(i)) ++correct;
  EXPECT_GT(correct, static_cast<int>(d.size() * 9 / 10));
}

TEST(LogisticRegression, ProbabilitiesOrdered) {
  const Dataset d = separable(40);
  const LogisticRegression m = LogisticRegression::train(d);
  EXPECT_LT(m.predict_proba({0.2, 0.5}), m.predict_proba({2.8, 0.5}));
  EXPECT_GE(m.predict_proba({0.2, 0.5}), 0.0);
  EXPECT_LE(m.predict_proba({2.8, 0.5}), 1.0);
}

TEST(LogisticRegression, WeightOnInformativeFeatureLarger) {
  const Dataset d = separable(50);
  const LogisticRegression m = LogisticRegression::train(d);
  ASSERT_EQ(m.weights().size(), 2u);
  EXPECT_GT(std::abs(m.weights()[0]), 3.0 * std::abs(m.weights()[1]));
}

TEST(LogisticRegression, HandlesMissingAsMean) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  for (int i = 0; i < 10; ++i) {
    d.add({static_cast<double>(i)}, 0);
    d.add({static_cast<double>(i) + 20.0}, 1);
  }
  const LogisticRegression m = LogisticRegression::train(d);
  // Missing -> standardized 0 -> probability near the decision boundary.
  const double p = m.predict_proba({kMissing});
  EXPECT_GT(p, 0.2);
  EXPECT_LT(p, 0.8);
}

TEST(LogisticRegression, RejectsBadInput) {
  Dataset empty({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  EXPECT_THROW(LogisticRegression::train(empty), std::invalid_argument);
  Dataset three({{"x", AttributeKind::kNumeric, {}}}, {"a", "b", "c"});
  three.add({1.0}, 0);
  EXPECT_THROW(LogisticRegression::train(three), std::invalid_argument);
}

TEST(TrainerAdapters, ProduceWorkingClassifiers) {
  const Dataset d = separable(25);
  for (const Trainer& trainer :
       {majority_trainer(), stump_trainer(), logistic_trainer()}) {
    const Classifier model = trainer(d);
    const std::size_t klass = model(d.row(0));
    EXPECT_LT(klass, 2u);
  }
  // The stump must beat majority on separable data.
  const Confusion stump = evaluate(stump_trainer()(d), d);
  const Confusion majority = evaluate(majority_trainer()(d), d);
  EXPECT_GT(stump.accuracy(), majority.accuracy());
}

}  // namespace
}  // namespace digg::ml
