#include "src/data/synthetic.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/data/corpus.h"

namespace digg::data {
namespace {

bool same_votes(const Story& a, const Story& b) {
  return std::ranges::equal(a.voters(), b.voters()) &&
         std::ranges::equal(a.times(), b.times());
}

// A small corpus keeps the suite fast; the promotion bar is scaled down
// with the world (fan waves shrink with the network) and bounds are loose.
SyntheticParams small_params() {
  SyntheticParams p;
  p.user_count = 4000;
  p.story_count = 150;
  p.top_submitter_pool = 50;
  p.promotion_threshold = 12;
  p.promotion_rate_votes = 5;
  p.vote_model.horizon = 2.0 * platform::kMinutesPerDay;
  p.vote_model.step = 2.0;
  return p;
}

TEST(GenerateCorpus, ProducesValidCorpus) {
  stats::Rng rng(1);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  EXPECT_NO_THROW(validate(syn.corpus));
  EXPECT_EQ(syn.corpus.story_count(), 150u);
  EXPECT_EQ(syn.corpus.user_count(), 4000u);
  EXPECT_EQ(syn.traits.size(), 150u);
  EXPECT_EQ(syn.seed, 1u);
}

TEST(GenerateCorpus, BothSectionsPopulated) {
  stats::Rng rng(2);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  EXPECT_GT(syn.corpus.front_page.size(), 10u);
  EXPECT_GT(syn.corpus.upcoming.size(), 10u);
}

TEST(GenerateCorpus, DeterministicForSeed) {
  stats::Rng rng1(7);
  stats::Rng rng2(7);
  const SyntheticCorpus a = generate_corpus(small_params(), rng1);
  const SyntheticCorpus b = generate_corpus(small_params(), rng2);
  ASSERT_EQ(a.corpus.front_page.size(), b.corpus.front_page.size());
  for (std::size_t i = 0; i < a.corpus.front_page.size(); ++i) {
    EXPECT_TRUE(same_votes(a.corpus.front_page[i], b.corpus.front_page[i]));
  }
  EXPECT_EQ(a.corpus.top_users, b.corpus.top_users);
}

TEST(GenerateCorpus, DifferentSeedsDiffer) {
  stats::Rng rng1(7);
  stats::Rng rng2(8);
  const SyntheticCorpus a = generate_corpus(small_params(), rng1);
  const SyntheticCorpus b = generate_corpus(small_params(), rng2);
  bool any_difference =
      a.corpus.front_page.size() != b.corpus.front_page.size();
  if (!any_difference && !a.corpus.front_page.empty()) {
    any_difference = !same_votes(a.corpus.front_page[0], b.corpus.front_page[0]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateCorpus, PromotedStoriesHaveAtLeastThresholdVotes) {
  stats::Rng rng(3);
  const SyntheticParams params = small_params();
  const SyntheticCorpus syn = generate_corpus(params, rng);
  for (const Story& s : syn.corpus.front_page)
    EXPECT_GE(s.vote_count(), params.promotion_threshold);
}

TEST(GenerateCorpus, PromotionsHappenWithinUpcomingLifetime) {
  stats::Rng rng(4);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  for (const Story& s : syn.corpus.front_page) {
    ASSERT_TRUE(s.promoted());
    EXPECT_LE(*s.promoted_at - s.submitted_at, platform::kMinutesPerDay + 1.0);
  }
}

TEST(GenerateCorpus, FrontPageSkewedTowardInteresting) {
  stats::Rng rng(5);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  // Promoted stories accumulate far more votes than stranded ones.
  double fp_mean = 0.0;
  for (const Story& s : syn.corpus.front_page)
    fp_mean += static_cast<double>(s.vote_count());
  fp_mean /= static_cast<double>(syn.corpus.front_page.size());
  double up_mean = 0.0;
  for (const Story& s : syn.corpus.upcoming)
    up_mean += static_cast<double>(s.vote_count());
  up_mean /= static_cast<double>(syn.corpus.upcoming.size());
  EXPECT_GT(fp_mean, 5.0 * up_mean);
}

TEST(GenerateCorpus, TopUsersRankedByPromotions) {
  stats::Rng rng(6);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  std::vector<std::size_t> promoted(syn.corpus.user_count(), 0);
  for (const Story& s : syn.corpus.front_page) ++promoted[s.submitter];
  const auto& top = syn.corpus.top_users;
  ASSERT_EQ(top.size(), syn.corpus.user_count());
  for (std::size_t r = 0; r + 1 < 50; ++r)
    EXPECT_GE(promoted[top[r]], promoted[top[r + 1]]);
}

TEST(GenerateCorpus, TraitsWithinUnitInterval) {
  stats::Rng rng(7);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  for (const auto& t : syn.traits) {
    EXPECT_GE(t.general, 0.0);
    EXPECT_LE(t.general, 1.0);
    EXPECT_GE(t.community, 0.0);
    EXPECT_LE(t.community, 1.0);
  }
}

TEST(GenerateCorpus, RejectsBadParameters) {
  stats::Rng rng(1);
  SyntheticParams p = small_params();
  p.story_count = 0;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
  p = small_params();
  p.top_submitter_pool = 0;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
  p = small_params();
  p.top_submitter_pool = p.user_count + 1;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
}

TEST(GenerateCorpus, UserCountOverridesNestedNetworkParams) {
  stats::Rng rng(8);
  SyntheticParams p = small_params();
  p.user_count = 3000;  // network params still carry the default 20000
  const SyntheticCorpus syn = generate_corpus(p, rng);
  EXPECT_EQ(syn.corpus.user_count(), 3000u);
}

}  // namespace
}  // namespace digg::data
