#include "src/data/synthetic.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/data/corpus.h"
#include "src/data/scenario.h"
#include "src/data/snapshot.h"
#include "src/dynamics/model.h"

namespace digg::data {
namespace {

namespace fs = std::filesystem;

bool same_votes(const Story& a, const Story& b) {
  return std::ranges::equal(a.voters(), b.voters()) &&
         std::ranges::equal(a.times(), b.times());
}

// A small corpus keeps the suite fast; the promotion bar is scaled down
// with the world (fan waves shrink with the network) and bounds are loose.
SyntheticParams small_params() {
  SyntheticParams p;
  p.user_count = 4000;
  p.story_count = 150;
  p.top_submitter_pool = 50;
  p.promotion_threshold = 12;
  p.promotion_rate_votes = 5;
  p.vote_model.horizon = 2.0 * platform::kMinutesPerDay;
  p.vote_model.step = 2.0;
  return p;
}

TEST(GenerateCorpus, ProducesValidCorpus) {
  stats::Rng rng(1);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  EXPECT_NO_THROW(validate(syn.corpus));
  EXPECT_EQ(syn.corpus.story_count(), 150u);
  EXPECT_EQ(syn.corpus.user_count(), 4000u);
  EXPECT_EQ(syn.traits.size(), 150u);
  EXPECT_EQ(syn.seed, 1u);
}

TEST(GenerateCorpus, BothSectionsPopulated) {
  stats::Rng rng(2);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  EXPECT_GT(syn.corpus.front_page.size(), 10u);
  EXPECT_GT(syn.corpus.upcoming.size(), 10u);
}

TEST(GenerateCorpus, DeterministicForSeed) {
  stats::Rng rng1(7);
  stats::Rng rng2(7);
  const SyntheticCorpus a = generate_corpus(small_params(), rng1);
  const SyntheticCorpus b = generate_corpus(small_params(), rng2);
  ASSERT_EQ(a.corpus.front_page.size(), b.corpus.front_page.size());
  for (std::size_t i = 0; i < a.corpus.front_page.size(); ++i) {
    EXPECT_TRUE(same_votes(a.corpus.front_page[i], b.corpus.front_page[i]));
  }
  EXPECT_EQ(a.corpus.top_users, b.corpus.top_users);
}

TEST(GenerateCorpus, DifferentSeedsDiffer) {
  stats::Rng rng1(7);
  stats::Rng rng2(8);
  const SyntheticCorpus a = generate_corpus(small_params(), rng1);
  const SyntheticCorpus b = generate_corpus(small_params(), rng2);
  bool any_difference =
      a.corpus.front_page.size() != b.corpus.front_page.size();
  if (!any_difference && !a.corpus.front_page.empty()) {
    any_difference = !same_votes(a.corpus.front_page[0], b.corpus.front_page[0]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(GenerateCorpus, PromotedStoriesHaveAtLeastThresholdVotes) {
  stats::Rng rng(3);
  const SyntheticParams params = small_params();
  const SyntheticCorpus syn = generate_corpus(params, rng);
  for (const Story& s : syn.corpus.front_page)
    EXPECT_GE(s.vote_count(), params.promotion_threshold);
}

TEST(GenerateCorpus, PromotionsHappenWithinUpcomingLifetime) {
  stats::Rng rng(4);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  for (const Story& s : syn.corpus.front_page) {
    ASSERT_TRUE(s.promoted());
    EXPECT_LE(*s.promoted_at - s.submitted_at, platform::kMinutesPerDay + 1.0);
  }
}

TEST(GenerateCorpus, FrontPageSkewedTowardInteresting) {
  stats::Rng rng(5);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  // Promoted stories accumulate far more votes than stranded ones.
  double fp_mean = 0.0;
  for (const Story& s : syn.corpus.front_page)
    fp_mean += static_cast<double>(s.vote_count());
  fp_mean /= static_cast<double>(syn.corpus.front_page.size());
  double up_mean = 0.0;
  for (const Story& s : syn.corpus.upcoming)
    up_mean += static_cast<double>(s.vote_count());
  up_mean /= static_cast<double>(syn.corpus.upcoming.size());
  EXPECT_GT(fp_mean, 5.0 * up_mean);
}

TEST(GenerateCorpus, TopUsersRankedByPromotions) {
  stats::Rng rng(6);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  std::vector<std::size_t> promoted(syn.corpus.user_count(), 0);
  for (const Story& s : syn.corpus.front_page) ++promoted[s.submitter];
  const auto& top = syn.corpus.top_users;
  ASSERT_EQ(top.size(), syn.corpus.user_count());
  for (std::size_t r = 0; r + 1 < 50; ++r)
    EXPECT_GE(promoted[top[r]], promoted[top[r + 1]]);
}

TEST(GenerateCorpus, TraitsWithinUnitInterval) {
  stats::Rng rng(7);
  const SyntheticCorpus syn = generate_corpus(small_params(), rng);
  for (const auto& t : syn.traits) {
    EXPECT_GE(t.general, 0.0);
    EXPECT_LE(t.general, 1.0);
    EXPECT_GE(t.community, 0.0);
    EXPECT_LE(t.community, 1.0);
  }
}

TEST(GenerateCorpus, RejectsBadParameters) {
  stats::Rng rng(1);
  SyntheticParams p = small_params();
  p.story_count = 0;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
  p = small_params();
  p.top_submitter_pool = 0;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
  p = small_params();
  p.top_submitter_pool = p.user_count + 1;
  EXPECT_THROW(generate_corpus(p, rng), std::invalid_argument);
}

TEST(GenerateCorpus, UserCountOverridesNestedNetworkParams) {
  stats::Rng rng(8);
  SyntheticParams p = small_params();
  p.user_count = 3000;  // network params still carry the default 20000
  const SyntheticCorpus syn = generate_corpus(p, rng);
  EXPECT_EQ(syn.corpus.user_count(), 3000u);
}

TEST(GenerateCorpusToSnapshot, MatchesEagerGenerationBitForBit) {
  // The streamed generator promises identical RNG consumption: the same
  // params and seed must yield the same stories, votes, phases, and
  // top-user ranking as the in-memory path, modulo file order (streamed
  // files hold submission order; the loader re-partitions by phase).
  const SyntheticParams params = small_params();
  stats::Rng rng_eager(11);
  const SyntheticCorpus eager = generate_corpus(params, rng_eager);

  const fs::path path =
      fs::temp_directory_path() /
      ("digg_streamed_gen_" + std::to_string(::getpid()) + ".snap");
  stats::Rng rng_stream(11);
  const StreamedCorpusInfo info = generate_corpus_to_snapshot(
      params, rng_stream, path, /*chunk_target_bytes=*/std::size_t{1} << 16);

  EXPECT_EQ(info.seed, 11u);
  EXPECT_EQ(info.story_count, eager.corpus.story_count());
  EXPECT_EQ(info.front_page_count, eager.corpus.front_page.size());
  EXPECT_EQ(info.upcoming_count, eager.corpus.upcoming.size());
  EXPECT_EQ(info.total_votes, eager.corpus.vote_store.total_votes());

  const Corpus loaded = load_snapshot_mmap(path);
  fs::remove(path);
  EXPECT_EQ(loaded.user_count(), eager.corpus.user_count());
  EXPECT_EQ(loaded.network.edge_count(), eager.corpus.network.edge_count());
  EXPECT_EQ(loaded.top_users, eager.corpus.top_users);

  std::map<StoryId, const Story*> by_id;
  for (const Story& s : eager.corpus.front_page) by_id[s.id] = &s;
  for (const Story& s : eager.corpus.upcoming) by_id[s.id] = &s;
  ASSERT_EQ(by_id.size(), info.story_count);
  ASSERT_EQ(loaded.front_page.size(), eager.corpus.front_page.size());
  const auto check = [&](const Story& got) {
    const auto it = by_id.find(got.id);
    ASSERT_NE(it, by_id.end()) << "unknown story id " << got.id;
    const Story& want = *it->second;
    EXPECT_EQ(got.submitter, want.submitter);
    EXPECT_EQ(got.submitted_at, want.submitted_at);
    EXPECT_EQ(got.quality, want.quality);
    EXPECT_EQ(got.phase, want.phase);
    ASSERT_EQ(got.promoted(), want.promoted());
    if (want.promoted()) {
      EXPECT_EQ(*got.promoted_at, *want.promoted_at);
    }
    // Bitwise vote identity — the RNG-consumption contract.
    EXPECT_TRUE(std::ranges::equal(got.voters(), want.voters()));
    EXPECT_TRUE(std::ranges::equal(got.times(), want.times()));
  };
  for (const Story& s : loaded.front_page) {
    EXPECT_TRUE(s.promoted());
    check(s);
  }
  for (const Story& s : loaded.upcoming) {
    EXPECT_FALSE(s.promoted());
    check(s);
  }
}

TEST(GenerateCorpusToSnapshot, RejectsBadParameters) {
  const fs::path path =
      fs::temp_directory_path() /
      ("digg_streamed_bad_" + std::to_string(::getpid()) + ".snap");
  stats::Rng rng(1);
  SyntheticParams p = small_params();
  p.story_count = 0;
  EXPECT_THROW((void)generate_corpus_to_snapshot(p, rng, path),
               std::invalid_argument);
  fs::remove(path);
}

// Calibration against the measured Digg marginals: the paper's §3 and the
// Zhu statistics (arXiv:0909.2706) both report power-law fan counts with a
// heavy concentration of links and activity in the best-connected users.
// The generator's preferential attachment (smoothing a, mean out-degree m)
// targets a tail exponent around 2 + a/m ≈ 2.6; this test pins the
// generated marginals to those shapes with deliberately loose bands.
TEST(GenerateCorpus, CalibratedAgainstZhuMarginals) {
  SyntheticParams p = small_params();
  p.user_count = 20000;  // larger sample stabilises the tail estimate
  p.story_count = 300;
  stats::Rng rng(42);
  const SyntheticCorpus syn = generate_corpus(p, rng);
  const graph::Digraph& net = syn.corpus.network;

  // Fan counts, largest first.
  std::vector<double> fans(p.user_count);
  for (std::size_t u = 0; u < p.user_count; ++u)
    fans[u] = static_cast<double>(net.fan_count(u));
  std::sort(fans.begin(), fans.end(), std::greater<>());

  // Hill estimator of the tail exponent over the top 2% of users:
  // alpha = 1 + k / sum(log(x_i / x_k)). Power law check, not a fit of
  // convenience: for an exponential tail the estimate drifts well above 4.
  const std::size_t k = p.user_count / 50;
  ASSERT_GT(fans[k], 0.0);
  double log_sum = 0.0;
  for (std::size_t i = 0; i < k; ++i) log_sum += std::log(fans[i] / fans[k]);
  const double alpha = 1.0 + static_cast<double>(k) / log_sum;
  EXPECT_GT(alpha, 1.6) << "fan-count tail too heavy for Digg";
  EXPECT_LT(alpha, 3.8) << "fan-count tail too light (not a power law?)";

  // Link concentration: the best-connected decile holds most fan links
  // (the paper's top users; uniform attachment would put it near 10%).
  const double total_fans = std::accumulate(fans.begin(), fans.end(), 0.0);
  const double top_decile = std::accumulate(
      fans.begin(), fans.begin() + static_cast<std::ptrdiff_t>(p.user_count / 10),
      0.0);
  EXPECT_GT(top_decile / total_fans, 0.45);

  // Voting activity per user is heavy-tailed too (Zhu's user-activity
  // marginal): the busiest voter decile casts far more than its share.
  std::vector<double> votes_by_user(p.user_count, 0.0);
  double total_votes = 0.0;
  const auto tally = [&](const Story& s) {
    for (const UserId v : s.voters()) {
      votes_by_user[v] += 1.0;
      total_votes += 1.0;
    }
  };
  for (const Story& s : syn.corpus.front_page) tally(s);
  for (const Story& s : syn.corpus.upcoming) tally(s);
  ASSERT_GT(total_votes, 0.0);
  std::sort(votes_by_user.begin(), votes_by_user.end(), std::greater<>());
  const double top_votes = std::accumulate(
      votes_by_user.begin(),
      votes_by_user.begin() + static_cast<std::ptrdiff_t>(p.user_count / 10),
      0.0);
  EXPECT_GT(top_votes / total_votes, 0.35);

  // Story popularity spread (Fig. 2a's wide vote-count range): the most
  // voted story dwarfs the median one.
  std::vector<double> story_votes;
  for (const Story& s : syn.corpus.front_page)
    story_votes.push_back(static_cast<double>(s.vote_count()));
  for (const Story& s : syn.corpus.upcoming)
    story_votes.push_back(static_cast<double>(s.vote_count()));
  std::sort(story_votes.begin(), story_votes.end());
  EXPECT_GT(story_votes.back(),
            8.0 * story_votes[story_votes.size() / 2]);
}

// --- pluggable models ----------------------------------------------------

// The eager/streamed bit-identity contract must hold for EVERY registered
// model, not just the one the goldens pin — a model that draws outside its
// split(story_id) substream would break here first.
TEST(GenerateCorpusToSnapshot, BitIdenticalUnderEveryRegisteredModel) {
  for (const std::string& model_id : dynamics::registered_model_ids()) {
    SCOPED_TRACE("model " + model_id);
    SyntheticParams params = small_params();
    params.model_id = model_id;
    params.stochastic.step = 4.0;  // keep the expensive model's runs fast
    params.stochastic.horizon = 2.0 * platform::kMinutesPerDay;

    stats::Rng rng_eager(11);
    const SyntheticCorpus eager = generate_corpus(params, rng_eager);
    EXPECT_EQ(eager.corpus.model_id, model_id);

    const fs::path path =
        fs::temp_directory_path() /
        ("digg_streamed_model_" + std::to_string(::getpid()) + ".snap");
    stats::Rng rng_stream(11);
    const StreamedCorpusInfo info = generate_corpus_to_snapshot(
        params, rng_stream, path,
        /*chunk_target_bytes=*/std::size_t{1} << 16);
    EXPECT_EQ(info.total_votes, eager.corpus.vote_store.total_votes());

    const Corpus loaded = load_snapshot_mmap(path);
    fs::remove(path);
    EXPECT_EQ(loaded.model_id, model_id);

    std::map<StoryId, const Story*> by_id;
    for (const Story& s : eager.corpus.front_page) by_id[s.id] = &s;
    for (const Story& s : eager.corpus.upcoming) by_id[s.id] = &s;
    const auto check = [&](const Story& got) {
      const auto it = by_id.find(got.id);
      ASSERT_NE(it, by_id.end()) << "unknown story id " << got.id;
      EXPECT_TRUE(same_votes(got, *it->second)) << "story " << got.id;
    };
    for (const Story& s : loaded.front_page) check(s);
    for (const Story& s : loaded.upcoming) check(s);
  }
}

TEST(GenerateCorpus, UnknownModelIdThrows) {
  SyntheticParams p = small_params();
  p.model_id = "no-such-model";
  stats::Rng rng(1);
  EXPECT_THROW((void)generate_corpus(p, rng), std::invalid_argument);
}

// --- scenario presets ----------------------------------------------------

TEST(Scenarios, EveryNamedScenarioGeneratesAValidCorpus) {
  const std::vector<std::string> names = scenario_names();
  ASSERT_GE(names.size(), 5u);  // legacy + stochastic + 3 variants
  std::set<std::string> models;
  for (const std::string& name : names) {
    SCOPED_TRACE("scenario " + name);
    ScenarioSpec spec = make_scenario(name, 7);
    EXPECT_EQ(spec.name, name);
    EXPECT_EQ(spec.seed, 7u);
    downscale(spec, 3000, 60);
    models.insert(spec.model_id());
    stats::Rng rng(spec.seed);
    const SyntheticCorpus syn = generate_corpus(spec.params, rng);
    EXPECT_NO_THROW(validate(syn.corpus));
    EXPECT_EQ(syn.corpus.model_id, spec.model_id());
    EXPECT_EQ(syn.corpus.story_count(), 60u);
  }
  // The preset matrix must exercise every registered model.
  for (const std::string& id : dynamics::registered_model_ids())
    EXPECT_TRUE(models.count(id)) << id;
}

TEST(Scenarios, VariantsActuallyDiverge) {
  // Same seed, different scenario params → different corpora. Guards
  // against a preset silently collapsing into the default.
  auto gen = [](const char* name) {
    ScenarioSpec spec = make_scenario(name, 7);
    downscale(spec, 3000, 60);
    stats::Rng rng(spec.seed);
    return generate_corpus(spec.params, rng);
  };
  const SyntheticCorpus stoch = gen("stochastic");
  const SyntheticCorpus diversity = gen("stochastic-diversity");
  const SyntheticCorpus flat = gen("stochastic-flat");
  const SyntheticCorpus casual = gen("stochastic-casual");
  const auto votes = [](const SyntheticCorpus& c) {
    return c.corpus.vote_store.total_votes();
  };
  // Promotion-rule and activity-mix changes shift total votes; the flat
  // network at least changes the graph.
  EXPECT_NE(votes(stoch), votes(casual));
  EXPECT_NE(stoch.corpus.network.edge_count(),
            flat.corpus.network.edge_count());
  EXPECT_TRUE(votes(stoch) != votes(diversity) ||
              stoch.corpus.front_page.size() !=
                  diversity.corpus.front_page.size());
}

TEST(Scenarios, UnknownNameThrowsListingKnownNames) {
  try {
    (void)make_scenario("not-a-scenario", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& err) {
    const std::string what = err.what();
    EXPECT_NE(what.find("not-a-scenario"), std::string::npos) << what;
    EXPECT_NE(what.find("legacy"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace digg::data
