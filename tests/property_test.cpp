// Property-based suites: invariants checked across randomized inputs using
// parameterized gtest sweeps over seeds.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <unordered_set>

#include "src/core/cascade.h"
#include "src/core/influence.h"
#include "src/digg/friends_interface.h"
#include "src/digg/promotion.h"
#include "src/digg/story.h"
#include "src/graph/generators.h"
#include "src/graph/metrics.h"
#include "src/graph/traversal.h"
#include "src/stats/rng.h"
#include "src/stats/summary.h"

namespace digg {
namespace {

using graph::Digraph;
using platform::Story;
using platform::UserId;

Digraph random_graph(stats::Rng& rng, std::size_t n = 60, double p = 0.06) {
  return graph::erdos_renyi(n, p, rng);
}

Story random_story(stats::Rng& rng, const Digraph& g, std::size_t votes) {
  const auto n = static_cast<std::int64_t>(g.node_count());
  std::vector<UserId> users(g.node_count());
  std::iota(users.begin(), users.end(), UserId{0});
  std::shuffle(users.begin(), users.end(), rng.engine());
  Story s = platform::make_story(0, users[0], 0.0, 0.5);
  const std::size_t count = std::min(votes, static_cast<std::size_t>(n) - 1);
  for (std::size_t k = 1; k <= count; ++k)
    platform::add_vote(s, users[k], static_cast<double>(k));
  return s;
}

class SeededProperty : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SeededProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

// --- cascade / provenance invariants --------------------------------------

TEST_P(SeededProperty, InNetworkVotesMonotoneAndBounded) {
  stats::Rng rng(GetParam());
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 30);
  std::size_t prev = 0;
  for (std::size_t n = 0; n <= 35; ++n) {
    const std::size_t v = core::in_network_votes(s, g, n);
    EXPECT_GE(v, prev);
    EXPECT_LE(v, n);
    EXPECT_LE(v, s.vote_count() - 1);
    prev = v;
  }
}

TEST_P(SeededProperty, CascadeProfileConsistentWithPointQueries) {
  stats::Rng rng(GetParam() * 7 + 1);
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 25);
  const std::vector<std::size_t> checkpoints = {0, 3, 6, 10, 20, 30};
  const auto profile = core::cascade_profile(s, g, checkpoints);
  for (std::size_t i = 0; i < checkpoints.size(); ++i)
    EXPECT_EQ(profile[i], core::in_network_votes(s, g, checkpoints[i]));
}

TEST_P(SeededProperty, ProvenanceMatchesBruteForceExposure) {
  stats::Rng rng(GetParam() * 13 + 5);
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 20);
  const auto prov = core::vote_provenance(s, g);
  // Brute force: vote k is in-network iff voter follows any prior voter.
  for (std::size_t k = 1; k < s.voters.size(); ++k) {
    const UserId voter = s.voters[k];
    bool exposed = false;
    for (std::size_t j = 0; j < k && !exposed; ++j) {
      exposed = g.has_edge(voter, s.voters[j]);
    }
    EXPECT_EQ(prov[k - 1], exposed) << "vote " << k;
  }
}

// --- influence / visibility invariants ------------------------------------

TEST_P(SeededProperty, VisibilitySetMatchesBruteForceRecompute) {
  stats::Rng rng(GetParam() * 3 + 2);
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 15);
  platform::VisibilitySet vis(g);
  std::unordered_set<UserId> voters;
  for (UserId user : s.voters) {
    vis.add_voter(user);
    voters.insert(user);
    // Brute force: union of fans of voters, minus voters.
    std::set<UserId> expected;
    for (UserId voter : voters) {
      for (UserId fan : g.fans(voter)) {
        if (!voters.count(fan)) expected.insert(fan);
      }
    }
    EXPECT_EQ(vis.influence(), expected.size());
    for (UserId w : expected) EXPECT_TRUE(vis.can_see(w));
  }
}

TEST_P(SeededProperty, InfluenceProfileMonotoneUntilVoterRemoval) {
  stats::Rng rng(GetParam() * 17 + 3);
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 20);
  // Influence after all votes equals the final visibility size and the
  // profile saturates beyond the record.
  const auto profile = core::influence_profile(s, g, {5, 21, 100});
  EXPECT_EQ(profile[1], profile[2]);
  EXPECT_EQ(profile[1], core::influence_after(s, g, s.vote_count()));
}

// --- promotion invariants ---------------------------------------------------

TEST_P(SeededProperty, DiversityWeightedMassBoundedByVoteCount) {
  stats::Rng rng(GetParam() * 29 + 7);
  const Digraph g = random_graph(rng);
  const Story s = random_story(rng, g, 25);
  const platform::DiversityPolicy policy(1000.0, 0.4);
  const double mass = policy.weighted_votes(s, g);
  EXPECT_LE(mass, static_cast<double>(s.vote_count()) + 1e-9);
  // Lower bound: submitter full + everything else at the fan weight.
  EXPECT_GE(mass,
            1.0 + 0.4 * static_cast<double>(s.vote_count() - 1) - 1e-9);
}

TEST_P(SeededProperty, DiversityMassDecreasesWithFanWeight) {
  stats::Rng rng(GetParam() * 31 + 11);
  const Digraph g = random_graph(rng, 60, 0.15);
  const Story s = random_story(rng, g, 25);
  const platform::DiversityPolicy heavy(1000.0, 0.9);
  const platform::DiversityPolicy light(1000.0, 0.1);
  EXPECT_GE(heavy.weighted_votes(s, g), light.weighted_votes(s, g));
}

// --- graph invariants -------------------------------------------------------

TEST_P(SeededProperty, DegreeSumsEqualEdgeCount) {
  stats::Rng rng(GetParam() * 41 + 13);
  const Digraph g = random_graph(rng, 80, 0.05);
  std::size_t out_sum = 0;
  std::size_t in_sum = 0;
  for (auto d : g.out_degrees()) out_sum += d;
  for (auto d : g.in_degrees()) in_sum += d;
  EXPECT_EQ(out_sum, g.edge_count());
  EXPECT_EQ(in_sum, g.edge_count());
}

TEST_P(SeededProperty, ReciprocityWithinUnitInterval) {
  stats::Rng rng(GetParam() * 43 + 17);
  const Digraph g = random_graph(rng, 50, 0.1);
  const double r = graph::reciprocity(g);
  EXPECT_GE(r, 0.0);
  EXPECT_LE(r, 1.0);
}

TEST_P(SeededProperty, ClusteringWithinUnitInterval) {
  stats::Rng rng(GetParam() * 47 + 19);
  const Digraph g = random_graph(rng, 40, 0.12);
  for (graph::NodeId u = 0; u < g.node_count(); ++u) {
    const double c = graph::local_clustering(g, u);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST_P(SeededProperty, BfsBothDirectionWeaklyDominatesDirected) {
  stats::Rng rng(GetParam() * 53 + 23);
  const Digraph g = random_graph(rng, 50, 0.05);
  const auto both = graph::bfs_distances(g, 0, graph::Direction::kBoth);
  const auto fwd = graph::bfs_distances(g, 0, graph::Direction::kFollowing);
  for (std::size_t u = 0; u < g.node_count(); ++u) {
    if (fwd[u] != graph::kUnreachable) {
      ASSERT_NE(both[u], graph::kUnreachable);
      EXPECT_LE(both[u], fwd[u]);
    }
  }
}

// --- summary invariants -----------------------------------------------------

TEST_P(SeededProperty, SummaryOrderingInvariants) {
  stats::Rng rng(GetParam() * 59 + 29);
  std::vector<double> values;
  const int n = static_cast<int>(rng.uniform_int(3, 200));
  for (int i = 0; i < n; ++i) values.push_back(rng.normal(0.0, 10.0));
  const stats::Summary s = stats::summarize(values);
  EXPECT_LE(s.min, s.q1);
  EXPECT_LE(s.q1, s.median);
  EXPECT_LE(s.median, s.q3);
  EXPECT_LE(s.q3, s.max);
  EXPECT_LE(s.min, s.trimmed_lo);
  EXPECT_LE(s.trimmed_hi, s.max);
  EXPECT_GE(s.stddev, 0.0);
}

TEST_P(SeededProperty, SpearmanInvariantUnderMonotoneTransform) {
  stats::Rng rng(GetParam() * 61 + 31);
  std::vector<double> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    x.push_back(rng.uniform(0.0, 10.0));
    y.push_back(rng.uniform(0.0, 10.0));
  }
  const double base = stats::spearman(x, y);
  std::vector<double> x_cubed;
  for (double v : x) x_cubed.push_back(v * v * v);
  EXPECT_NEAR(stats::spearman(x_cubed, y), base, 1e-9);
}

}  // namespace
}  // namespace digg
