#include "src/graph/generators.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "src/graph/traversal.h"

namespace digg::graph {
namespace {

TEST(ErdosRenyi, EdgeCountConcentratesAroundExpectation) {
  stats::Rng rng(1);
  const std::size_t n = 400;
  const double p = 0.01;
  const Digraph g = erdos_renyi(n, p, rng);
  const double expected = p * static_cast<double>(n) * (n - 1);
  EXPECT_NEAR(static_cast<double>(g.edge_count()), expected,
              4.0 * std::sqrt(expected));
}

TEST(ErdosRenyi, ZeroProbabilityGivesNoEdges) {
  stats::Rng rng(1);
  EXPECT_EQ(erdos_renyi(100, 0.0, rng).edge_count(), 0u);
}

TEST(ErdosRenyi, NoSelfLoops) {
  stats::Rng rng(2);
  const Digraph g = erdos_renyi(50, 0.2, rng);
  for (NodeId u = 0; u < g.node_count(); ++u)
    EXPECT_FALSE(g.has_edge(u, u));
}

TEST(ErdosRenyi, RejectsBadProbability) {
  stats::Rng rng(1);
  EXPECT_THROW(erdos_renyi(10, -0.1, rng), std::invalid_argument);
  EXPECT_THROW(erdos_renyi(10, 1.1, rng), std::invalid_argument);
}

TEST(PreferentialAttachment, EarlyNodesAccumulateFans) {
  stats::Rng rng(3);
  PreferentialAttachmentParams params;
  params.node_count = 3000;
  params.mean_out_degree = 4.0;
  const Digraph g = preferential_attachment(params, rng);
  // Mean fan count of the first 20 nodes dwarfs that of the last 1000.
  double head = 0.0;
  for (NodeId u = 0; u < 20; ++u) head += static_cast<double>(g.fan_count(u));
  head /= 20.0;
  double tail = 0.0;
  for (NodeId u = 2000; u < 3000; ++u)
    tail += static_cast<double>(g.fan_count(u));
  tail /= 1000.0;
  EXPECT_GT(head, 10.0 * std::max(tail, 0.5));
}

TEST(PreferentialAttachment, FanDistributionHeavyTailed) {
  stats::Rng rng(4);
  PreferentialAttachmentParams params;
  params.node_count = 3000;
  const Digraph g = preferential_attachment(params, rng);
  const auto in = g.in_degrees();
  const std::size_t max_fans = *std::max_element(in.begin(), in.end());
  const double mean_fans =
      static_cast<double>(g.edge_count()) / static_cast<double>(in.size());
  // A hub far above the mean is the signature of preferential attachment.
  EXPECT_GT(static_cast<double>(max_fans), 20.0 * mean_fans);
}

TEST(PreferentialAttachment, MeanOutDegreeApproximatelyRespected) {
  stats::Rng rng(5);
  PreferentialAttachmentParams params;
  params.node_count = 2000;
  params.mean_out_degree = 5.0;
  const Digraph g = preferential_attachment(params, rng);
  const double mean_out = static_cast<double>(g.edge_count()) /
                          static_cast<double>(g.node_count());
  // Duplicate-rejection and the n-1 first node lower it slightly.
  EXPECT_NEAR(mean_out, 5.0, 1.0);
}

TEST(PreferentialAttachment, MostlyOneWeakComponent) {
  stats::Rng rng(6);
  PreferentialAttachmentParams params;
  params.node_count = 1000;
  const Digraph g = preferential_attachment(params, rng);
  EXPECT_GT(giant_component_fraction(g), 0.99);
}

TEST(PreferentialAttachment, RejectsBadParameters) {
  stats::Rng rng(1);
  PreferentialAttachmentParams params;
  params.node_count = 1;
  EXPECT_THROW(preferential_attachment(params, rng), std::invalid_argument);
  params.node_count = 10;
  params.mean_out_degree = 0.0;
  EXPECT_THROW(preferential_attachment(params, rng), std::invalid_argument);
  params.mean_out_degree = 2.0;
  params.smoothing = 0.0;
  EXPECT_THROW(preferential_attachment(params, rng), std::invalid_argument);
}

TEST(ConfigurationModel, ApproximatesTargetDegrees) {
  stats::Rng rng(7);
  const std::size_t n = 500;
  std::vector<std::size_t> out_deg(n, 3);
  std::vector<std::size_t> in_deg(n, 3);
  const Digraph g = configuration_model(out_deg, in_deg, rng);
  // Self-loop/duplicate removal loses only a small fraction of stubs.
  EXPECT_GT(g.edge_count(), static_cast<std::size_t>(0.95 * 3 * n));
  EXPECT_LE(g.edge_count(), 3 * n);
}

TEST(ConfigurationModel, RejectsSizeMismatch) {
  stats::Rng rng(1);
  EXPECT_THROW(configuration_model({1, 2}, {1}, rng), std::invalid_argument);
}

TEST(ConfigurationModel, HubDegreePreserved) {
  stats::Rng rng(8);
  const std::size_t n = 300;
  std::vector<std::size_t> out_deg(n, 1);
  std::vector<std::size_t> in_deg(n, 1);
  in_deg[0] = 100;  // one hub collects many fans
  out_deg[n - 1] = 100;
  const Digraph g = configuration_model(out_deg, in_deg, rng);
  // Duplicate/self-loop removal trims a few stubs; the hub keeps the bulk.
  EXPECT_GT(g.fan_count(0), 70u);
}

TEST(PlantedPartition, DenserWithinCommunities) {
  stats::Rng rng(9);
  PlantedPartitionParams params;
  params.node_count = 400;
  params.communities = 4;
  params.p_in = 0.08;
  params.p_out = 0.004;
  const Digraph g = planted_partition(params, rng);
  const auto community = planted_communities(params);
  std::size_t internal = 0;
  for (NodeId u = 0; u < g.node_count(); ++u)
    for (NodeId v : g.friends(u))
      if (community[u] == community[v]) ++internal;
  const double internal_frac =
      static_cast<double>(internal) / static_cast<double>(g.edge_count());
  // ~100 in-community targets at p_in vs ~300 outside at p_out:
  // expected internal fraction ~ (100*0.08)/(100*0.08+300*0.004) ~ 0.87.
  EXPECT_GT(internal_frac, 0.75);
}

TEST(PlantedPartition, CommunitiesAreContiguousBlocks) {
  PlantedPartitionParams params;
  params.node_count = 10;
  params.communities = 2;
  const auto community = planted_communities(params);
  EXPECT_EQ(community[0], 0u);
  EXPECT_EQ(community[4], 0u);
  EXPECT_EQ(community[5], 1u);
  EXPECT_EQ(community[9], 1u);
}

TEST(PlantedPartition, RejectsBadCommunityCount) {
  stats::Rng rng(1);
  PlantedPartitionParams params;
  params.node_count = 10;
  params.communities = 0;
  EXPECT_THROW(planted_partition(params, rng), std::invalid_argument);
  params.communities = 11;
  EXPECT_THROW(planted_partition(params, rng), std::invalid_argument);
}

TEST(Generators, DeterministicGivenSeed) {
  stats::Rng rng1(77);
  stats::Rng rng2(77);
  PreferentialAttachmentParams params;
  params.node_count = 500;
  const Digraph a = preferential_attachment(params, rng1);
  const Digraph b = preferential_attachment(params, rng2);
  ASSERT_EQ(a.edge_count(), b.edge_count());
  for (NodeId u = 0; u < a.node_count(); ++u) {
    const auto fa = a.friends(u);
    const auto fb = b.friends(u);
    ASSERT_EQ(fa.size(), fb.size());
    EXPECT_TRUE(std::equal(fa.begin(), fa.end(), fb.begin()));
  }
}

}  // namespace
}  // namespace digg::graph
