// Tests for the observability layer (src/obs): logger level filtering and
// field formatting, metrics registry correctness under concurrent updates
// (run under -DDIGG_SANITIZE=thread to prove the hot path is race-free),
// trace span nesting/ordering, and the zero-perturbation contract — the
// fig5 pipeline must be bit-identical with tracing on and off.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/runtime/parallel.h"

namespace digg::obs {
namespace {

// ------------------------------------------------------------------ logger

/// Captures emitted lines and restores the default sink + level on exit.
class LogCapture {
 public:
  LogCapture() : saved_level_(log_level()) {
    set_log_sink([this](std::string_view line) {
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
  LogLevel saved_level_;
};

TEST(LogLevelParse, KnownNamesAndFallback) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogFilter, DropsBelowThresholdKeepsAtOrAbove) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  log_debug("test", "dropped");
  log_info("test", "dropped");
  log_warn("test", "kept");
  log_error("test", "kept too");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("level=warn"), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("level=error"), std::string::npos);
}

TEST(LogFilter, OffSilencesEverything) {
  LogCapture capture;
  set_log_level(LogLevel::kOff);
  log_error("test", "dropped");
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LogFormat, FieldKindsRenderAsKeyValue) {
  const std::string line = format_log_line(
      LogLevel::kInfo, "comp", "msg",
      {{"i", -3}, {"u", 7u}, {"d", 0.5}, {"flag", true}, {"s", "plain"}});
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("comp=comp"), std::string::npos);
  EXPECT_NE(line.find("msg=msg"), std::string::npos);
  EXPECT_NE(line.find(" i=-3"), std::string::npos);
  EXPECT_NE(line.find(" u=7"), std::string::npos);
  EXPECT_NE(line.find(" d=0.5"), std::string::npos);
  EXPECT_NE(line.find(" flag=true"), std::string::npos);
  EXPECT_NE(line.find(" s=plain"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogFormat, StringsWithSpacesOrQuotesAreQuoted) {
  const std::string line =
      format_log_line(LogLevel::kInfo, "comp", "two words",
                      {{"path", "/tmp/x y"}, {"q", "say \"hi\""}});
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos);
  EXPECT_NE(line.find("path=\"/tmp/x y\""), std::string::npos);
  EXPECT_NE(line.find("q=\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(LogFormat, StartsWithMonotonicTimestamp) {
  const std::string line = format_log_line(LogLevel::kInfo, "c", "m", {});
  EXPECT_EQ(line.rfind("t=", 0), 0u);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, RegistryReturnsSameInstrumentForSameName) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("obs_test.identity");
  Counter& b = reg.counter("obs_test.identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("obs_test.gauge");
  Gauge& g2 = reg.gauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Counter& c = Registry::global().counter("obs_test.concurrent");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  {
    runtime::ParallelOptions opts;
    opts.threads = kThreads;
    runtime::parallel_for(
        kThreads,
        [&](std::size_t) {
          for (int i = 0; i < kPerThread; ++i) c.inc();
        },
        opts);
  }
  EXPECT_EQ(c.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentHistogramObservationsAreExact) {
  Histogram& h =
      Registry::global().histogram("obs_test.hist", {1.0, 2.0, 4.0});
  const std::uint64_t before = h.count();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.5);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketsSplitAtBounds) {
  Histogram& h = Registry::global().histogram("obs_test.buckets",
                                              {10.0, 100.0, 1000.0});
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (inclusive upper bound)
  h.observe(50.0);    // <= 100
  h.observe(5000.0);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
}

TEST(Metrics, JsonSnapshotContainsInstruments) {
  Registry& reg = Registry::global();
  reg.counter("obs_test.json_counter").inc(3);
  reg.gauge("obs_test.json_gauge").set(2.5);
  reg.histogram("obs_test.json_hist", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(Metrics, WriteBenchReportProducesJsonFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_bench.json";
  ASSERT_TRUE(write_bench_report(path.string(), "obs_test", 42, 12.5));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------- trace

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  if (trace_enabled()) GTEST_SKIP() << "DIGG_TRACE set in environment";
  const std::size_t before = trace_event_count();
  {
    Span span("noop", "test");
  }
  EXPECT_EQ(trace_event_count(), before);
}

TEST(Trace, SpansNestAndOrderInOutput) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_trace.json";
  trace_start(path.string());
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
    }
    {
      Span inner2("inner2", "test");
    }
  }
  EXPECT_EQ(trace_event_count(), 3u);
  trace_stop();
  EXPECT_FALSE(trace_enabled());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Complete events are recorded at destruction: inner, inner2, outer.
  const auto inner_pos = json.find("\"name\":\"inner\"");
  const auto inner2_pos = json.find("\"name\":\"inner2\"");
  const auto outer_pos = json.find("\"name\":\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(inner2_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, inner2_pos);
  EXPECT_LT(inner2_pos, outer_pos);
  std::filesystem::remove(path);
}

TEST(Trace, RuntimeChunkSpansAppearInTrace) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_runtime_trace.json";
  trace_start(path.string());
  runtime::ParallelOptions opts;
  opts.threads = 4;
  std::atomic<int> calls{0};
  runtime::parallel_for(
      100, [&](std::size_t) { calls.fetch_add(1); }, opts);
  trace_stop();
  EXPECT_EQ(calls.load(), 100);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
  std::filesystem::remove(path);
}

// --------------------------------------------------- zero-perturbation

const data::SyntheticCorpus& small_corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    // Matches runtime_test's end-to-end corpus: both label classes on the
    // front page, generated in well under a second.
    params.user_count = 40000;
    params.story_count = 400;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

TEST(ZeroPerturbation, Fig5PredictionIdenticalWithTracingEnabled) {
  auto run = [&] {
    stats::Rng rng(7);
    core::Fig5Params params;
    params.folds = 5;
    return core::fig5_prediction(small_corpus().corpus, params, rng);
  };
  const core::Fig5Result off = run();

  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_fig5_trace.json";
  trace_start(path.string());
  const core::Fig5Result on = run();
  trace_stop();
  std::filesystem::remove(path);

  EXPECT_EQ(off.cross_validation.pooled.tp, on.cross_validation.pooled.tp);
  EXPECT_EQ(off.cross_validation.pooled.tn, on.cross_validation.pooled.tn);
  EXPECT_EQ(off.cross_validation.pooled.fp, on.cross_validation.pooled.fp);
  EXPECT_EQ(off.cross_validation.pooled.fn, on.cross_validation.pooled.fn);
  EXPECT_EQ(off.holdout.tp, on.holdout.tp);
  EXPECT_EQ(off.holdout.tn, on.holdout.tn);
  EXPECT_EQ(off.holdout.fp, on.holdout.fp);
  EXPECT_EQ(off.holdout.fn, on.holdout.fn);
  EXPECT_EQ(off.holdout_stories, on.holdout_stories);
  EXPECT_EQ(off.predictor.tree().render(), on.predictor.tree().render());
}

TEST(ZeroPerturbation, LogLevelDoesNotChangeResults) {
  LogCapture capture;
  set_log_level(LogLevel::kTrace);
  stats::Rng rng_loud(3);
  const auto loud =
      data::generate_corpus(data::SyntheticParams{}, rng_loud);
  set_log_level(LogLevel::kOff);
  stats::Rng rng_quiet(3);
  const auto quiet =
      data::generate_corpus(data::SyntheticParams{}, rng_quiet);
  EXPECT_EQ(loud.corpus.story_count(), quiet.corpus.story_count());
  EXPECT_EQ(loud.corpus.front_page.size(), quiet.corpus.front_page.size());
  EXPECT_EQ(loud.corpus.upcoming.size(), quiet.corpus.upcoming.size());
}

}  // namespace
}  // namespace digg::obs
