// Tests for the observability layer (src/obs): logger level filtering and
// field formatting, metrics registry correctness under concurrent updates
// (run under -DDIGG_SANITIZE=thread to prove the hot path is race-free),
// trace span nesting/ordering, flight-recorder seqlock semantics
// (wraparound, concurrent writers vs dumpers), crash-report dumps
// (SIGUSR2 mid-replay), percentile derivation, the Prometheus exporter,
// the watchdog, hardware counters, and the zero-perturbation contract —
// the fig5 pipeline must be bit-identical with every telemetry surface on.

#include <fcntl.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/core/experiment.h"
#include "src/data/synthetic.h"
#include "src/obs/exporter.h"
#include "src/obs/log.h"
#include "src/obs/metrics.h"
#include "src/obs/perf.h"
#include "src/obs/recorder.h"
#include "src/obs/trace.h"
#include "src/obs/watchdog.h"
#include "src/runtime/parallel.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

// The SIGUSR2 dump-and-continue path snapshots the metrics registry from
// inside the handler, which allocates — the documented accepted risk of
// DESIGN.md §10 (the ring dump itself is async-signal-safe; the metrics
// section is best-effort via try_lock). TSan's signal-unsafe-call checker
// flags exactly that trade-off, so suppress it for this binary only;
// genuine data races still fail the run.
extern "C" const char* __tsan_default_suppressions() {
  return "signal:write_crash_report\n";
}

namespace digg::obs {
namespace {

// ------------------------------------------------------------------ logger

/// Captures emitted lines and restores the default sink + level on exit.
class LogCapture {
 public:
  LogCapture() : saved_level_(log_level()) {
    set_log_sink([this](std::string_view line) {
      lines_.emplace_back(line);
    });
  }
  ~LogCapture() {
    set_log_sink(nullptr);
    set_log_level(saved_level_);
  }
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
  LogLevel saved_level_;
};

TEST(LogLevelParse, KnownNamesAndFallback) {
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kWarn), LogLevel::kWarn);
}

TEST(LogFilter, DropsBelowThresholdKeepsAtOrAbove) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));
  log_debug("test", "dropped");
  log_info("test", "dropped");
  log_warn("test", "kept");
  log_error("test", "kept too");
  ASSERT_EQ(capture.lines().size(), 2u);
  EXPECT_NE(capture.lines()[0].find("level=warn"), std::string::npos);
  EXPECT_NE(capture.lines()[1].find("level=error"), std::string::npos);
}

TEST(LogFilter, OffSilencesEverything) {
  LogCapture capture;
  set_log_level(LogLevel::kOff);
  log_error("test", "dropped");
  EXPECT_TRUE(capture.lines().empty());
}

TEST(LogFormat, FieldKindsRenderAsKeyValue) {
  const std::string line = format_log_line(
      LogLevel::kInfo, "comp", "msg",
      {{"i", -3}, {"u", 7u}, {"d", 0.5}, {"flag", true}, {"s", "plain"}});
  EXPECT_NE(line.find("level=info"), std::string::npos);
  EXPECT_NE(line.find("comp=comp"), std::string::npos);
  EXPECT_NE(line.find("msg=msg"), std::string::npos);
  EXPECT_NE(line.find(" i=-3"), std::string::npos);
  EXPECT_NE(line.find(" u=7"), std::string::npos);
  EXPECT_NE(line.find(" d=0.5"), std::string::npos);
  EXPECT_NE(line.find(" flag=true"), std::string::npos);
  EXPECT_NE(line.find(" s=plain"), std::string::npos);
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(LogFormat, StringsWithSpacesOrQuotesAreQuoted) {
  const std::string line =
      format_log_line(LogLevel::kInfo, "comp", "two words",
                      {{"path", "/tmp/x y"}, {"q", "say \"hi\""}});
  EXPECT_NE(line.find("msg=\"two words\""), std::string::npos);
  EXPECT_NE(line.find("path=\"/tmp/x y\""), std::string::npos);
  EXPECT_NE(line.find("q=\"say \\\"hi\\\"\""), std::string::npos);
}

TEST(LogFormat, StartsWithMonotonicTimestamp) {
  const std::string line = format_log_line(LogLevel::kInfo, "c", "m", {});
  EXPECT_EQ(line.rfind("t=", 0), 0u);
}

// ----------------------------------------------------------------- metrics

TEST(Metrics, RegistryReturnsSameInstrumentForSameName) {
  Registry& reg = Registry::global();
  Counter& a = reg.counter("obs_test.identity");
  Counter& b = reg.counter("obs_test.identity");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = reg.gauge("obs_test.gauge");
  Gauge& g2 = reg.gauge("obs_test.gauge");
  EXPECT_EQ(&g1, &g2);
}

TEST(Metrics, ConcurrentIncrementsAreExact) {
  Counter& c = Registry::global().counter("obs_test.concurrent");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  {
    runtime::ParallelOptions opts;
    opts.threads = kThreads;
    runtime::parallel_for(
        kThreads,
        [&](std::size_t) {
          for (int i = 0; i < kPerThread; ++i) c.inc();
        },
        opts);
  }
  EXPECT_EQ(c.value() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, ConcurrentHistogramObservationsAreExact) {
  Histogram& h =
      Registry::global().histogram("obs_test.hist", {1.0, 2.0, 4.0});
  const std::uint64_t before = h.count();
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.observe(1.5);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.count() - before,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(Metrics, HistogramBucketsSplitAtBounds) {
  Histogram& h = Registry::global().histogram("obs_test.buckets",
                                              {10.0, 100.0, 1000.0});
  h.observe(5.0);     // <= 10
  h.observe(10.0);    // <= 10 (inclusive upper bound)
  h.observe(50.0);    // <= 100
  h.observe(5000.0);  // overflow
  const auto counts = h.bucket_counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 5065.0);
}

TEST(Metrics, JsonSnapshotContainsInstruments) {
  Registry& reg = Registry::global();
  reg.counter("obs_test.json_counter").inc(3);
  reg.gauge("obs_test.json_gauge").set(2.5);
  reg.histogram("obs_test.json_hist", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_counter\""), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_gauge\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"obs_test.json_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"+inf\""), std::string::npos);
}

TEST(Metrics, WriteBenchReportProducesJsonFile) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_bench.json";
  ASSERT_TRUE(write_bench_report(path.string(), "obs_test", 42, 12.5));
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"bench\":\"obs_test\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":42"), std::string::npos);
  EXPECT_NE(json.find("\"wall_ms\":"), std::string::npos);
  EXPECT_NE(json.find("\"metrics\":"), std::string::npos);
  std::filesystem::remove(path);
}

// ------------------------------------------------------------------- trace

TEST(Trace, DisabledByDefaultAndSpansAreFree) {
  if (trace_enabled()) GTEST_SKIP() << "DIGG_TRACE set in environment";
  const std::size_t before = trace_event_count();
  {
    Span span("noop", "test");
  }
  EXPECT_EQ(trace_event_count(), before);
}

TEST(Trace, SpansNestAndOrderInOutput) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_trace.json";
  trace_start(path.string());
  {
    Span outer("outer", "test");
    {
      Span inner("inner", "test");
    }
    {
      Span inner2("inner2", "test");
    }
  }
  EXPECT_EQ(trace_event_count(), 3u);
  trace_stop();
  EXPECT_FALSE(trace_enabled());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  ASSERT_FALSE(json.empty());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  // Complete events are recorded at destruction: inner, inner2, outer.
  const auto inner_pos = json.find("\"name\":\"inner\"");
  const auto inner2_pos = json.find("\"name\":\"inner2\"");
  const auto outer_pos = json.find("\"name\":\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(inner2_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, inner2_pos);
  EXPECT_LT(inner2_pos, outer_pos);
  std::filesystem::remove(path);
}

TEST(Trace, RuntimeChunkSpansAppearInTrace) {
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_runtime_trace.json";
  trace_start(path.string());
  runtime::ParallelOptions opts;
  opts.threads = 4;
  std::atomic<int> calls{0};
  runtime::parallel_for(
      100, [&](std::size_t) { calls.fetch_add(1); }, opts);
  trace_stop();
  EXPECT_EQ(calls.load(), 100);

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();
  EXPECT_NE(json.find("\"name\":\"chunk\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"runtime\""), std::string::npos);
  std::filesystem::remove(path);
}

// --------------------------------------------------- zero-perturbation

const data::SyntheticCorpus& small_corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    // Matches runtime_test's end-to-end corpus: both label classes on the
    // front page, generated in well under a second.
    params.user_count = 40000;
    params.story_count = 400;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

TEST(ZeroPerturbation, Fig5PredictionIdenticalWithTracingEnabled) {
  auto run = [&] {
    stats::Rng rng(7);
    core::Fig5Params params;
    params.folds = 5;
    return core::fig5_prediction(small_corpus().corpus, params, rng);
  };
  const core::Fig5Result off = run();

  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_fig5_trace.json";
  trace_start(path.string());
  const core::Fig5Result on = run();
  trace_stop();
  std::filesystem::remove(path);

  EXPECT_EQ(off.cross_validation.pooled.tp, on.cross_validation.pooled.tp);
  EXPECT_EQ(off.cross_validation.pooled.tn, on.cross_validation.pooled.tn);
  EXPECT_EQ(off.cross_validation.pooled.fp, on.cross_validation.pooled.fp);
  EXPECT_EQ(off.cross_validation.pooled.fn, on.cross_validation.pooled.fn);
  EXPECT_EQ(off.holdout.tp, on.holdout.tp);
  EXPECT_EQ(off.holdout.tn, on.holdout.tn);
  EXPECT_EQ(off.holdout.fp, on.holdout.fp);
  EXPECT_EQ(off.holdout.fn, on.holdout.fn);
  EXPECT_EQ(off.holdout_stories, on.holdout_stories);
  EXPECT_EQ(off.predictor.tree().render(), on.predictor.tree().render());
}

// --------------------------------------------------------------- quantiles

TEST(HistogramQuantile, InterpolatesInsideTheCrossingBucket) {
  // 100 observations all in (1, 2]: rank q*100 interpolates linearly
  // across that bucket from its lower bound 1.
  const std::vector<double> bounds{1.0, 2.0, 4.0, 8.0};
  const std::vector<std::uint64_t> counts{0, 100, 0, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 1.99);
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 1.0), 2.0);
}

TEST(HistogramQuantile, FirstBucketInterpolatesFromZero) {
  const std::vector<double> bounds{10.0, 20.0};
  const std::vector<std::uint64_t> counts{10, 0, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.5), 5.0);
}

TEST(HistogramQuantile, SpansBucketsAtTheCumulativeCrossing) {
  // 50 in (0,10], 50 in (10,20]: p75's rank 75 falls 25 observations into
  // the second bucket -> 10 + 10 * 25/50.
  const std::vector<double> bounds{10.0, 20.0};
  const std::vector<std::uint64_t> counts{50, 50, 0};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.75), 15.0);
}

TEST(HistogramQuantile, OverflowBucketClampsToLastFiniteBound) {
  const std::vector<double> bounds{1.0, 2.0};
  const std::vector<std::uint64_t> counts{0, 0, 5};
  EXPECT_DOUBLE_EQ(histogram_quantile(bounds, counts, 0.99), 2.0);
}

TEST(HistogramQuantile, EmptyHistogramIsZero) {
  EXPECT_DOUBLE_EQ(
      histogram_quantile({1.0, 2.0}, {0, 0, 0}, 0.99), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile({}, {}, 0.5), 0.0);
}

TEST(HistogramQuantile, HistogramMethodMatchesFreeFunction) {
  Histogram& h =
      Registry::global().histogram("obs_test.quant_us", {1.0, 2.0, 4.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.99),
                   histogram_quantile(h.bounds(), h.bucket_counts(), 0.99));
}

TEST(Metrics, LatencyHistogramsDeriveP99GaugesInJson) {
  Registry& reg = Registry::global();
  Histogram& h = reg.histogram("obs_test.derived_us", {1.0, 2.0});
  for (int i = 0; i < 100; ++i) h.observe(1.5);
  reg.histogram("obs_test.not_latency", {1.0}).observe(0.5);
  const std::string json = reg.to_json();
  // *_us histograms with data derive a gated tail-latency gauge; non-latency
  // histograms do not.
  EXPECT_NE(json.find("\"obs_test.derived_us_p99\":1.99"), std::string::npos);
  EXPECT_EQ(json.find("\"obs_test.not_latency_p99\""), std::string::npos);
}

// --------------------------------------------------------- flight recorder

TEST(Recorder, KindNamesAreStable) {
  EXPECT_STREQ(event_kind_name(EventKind::kMark), "mark");
  EXPECT_STREQ(event_kind_name(EventKind::kVoteApplied), "vote_applied");
  EXPECT_STREQ(event_kind_name(EventKind::kLruEvict), "lru_evict");
  EXPECT_STREQ(event_kind_name(static_cast<EventKind>(999)), "?");
}

TEST(Recorder, RingKeepsTheLastCapacityEventsInOrder) {
  set_recorder_enabled(true);
  const std::size_t cap = recorder_ring_capacity();
  // A fresh thread gets a fresh ring, so this test owns every slot in it.
  // dom=777 marks our events among whatever other tests recorded.
  std::thread([cap] {
    for (std::uint64_t i = 0; i < 2 * cap; ++i)
      record_event(EventKind::kMark, 777, i);
  }).join();
  const std::string dump = dump_recorder();
  std::vector<std::uint64_t> seen;
  std::istringstream lines(dump);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("kind=mark dom=777 ") == std::string::npos) continue;
    const auto a_pos = line.find(" a=");
    ASSERT_NE(a_pos, std::string::npos) << line;
    seen.push_back(std::stoull(line.substr(a_pos + 3)));
  }
  // Wraparound: exactly the last `cap` events survive, oldest first.
  ASSERT_EQ(seen.size(), cap);
  for (std::size_t i = 0; i < seen.size(); ++i)
    EXPECT_EQ(seen[i], cap + i) << "at position " << i;
}

TEST(Recorder, DisabledRecordingLeavesNoTrace) {
  set_recorder_enabled(false);
  std::thread([] {
    for (int i = 0; i < 100; ++i) record_event(EventKind::kMark, 778, i);
  }).join();
  set_recorder_enabled(true);
  EXPECT_EQ(dump_recorder().find("dom=778"), std::string::npos);
}

TEST(Recorder, ConcurrentWritersAndDumpersAreRaceFree) {
  // The seqlock contract under fire: writers flood their rings while other
  // threads dump. TSan proves the memory model; the asserts prove dumps
  // stay parseable (every surviving line is complete).
  set_recorder_enabled(true);
  constexpr int kWriters = 4;
  std::atomic<bool> go{false}, stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&go, &stop, w] {
      while (!go.load()) std::this_thread::yield();
      std::uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed))
        record_event(EventKind::kMark, 800 + static_cast<std::uint32_t>(w),
                     i++);
    });
  }
  go.store(true);
  for (int d = 0; d < 20; ++d) {
    const std::string dump = dump_recorder();
    std::istringstream lines(dump);
    std::string line;
    while (std::getline(lines, line)) {
      EXPECT_EQ(line.rfind("ring=", 0), 0u) << line;
      EXPECT_NE(line.find(" b="), std::string::npos) << line;
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

TEST(Recorder, WriteCrashReportIsCompleteAndParseable) {
  set_recorder_enabled(true);
  Registry::global().counter("obs_test.crash_marker").inc(41);
  record_event(EventKind::kMark, 779, 12345);
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_report.txt";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  write_crash_report(fd, 0);
  ::close(fd);
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string report = buf.str();
  EXPECT_NE(report.find("signal=0 name=none"), std::string::npos);
  EXPECT_NE(report.find("--- flight recorder ---"), std::string::npos);
  EXPECT_NE(report.find("kind=mark dom=779 a=12345"), std::string::npos);
  EXPECT_NE(report.find("--- metrics ---"), std::string::npos);
  EXPECT_NE(report.find("\"obs_test.crash_marker\":"), std::string::npos);
  std::filesystem::remove(path);
}

TEST(Recorder, Sigusr2DuringStreamReplayDumpsShardEventsAndMetrics) {
  // The acceptance scenario: a stream replay is interrupted with SIGUSR2
  // and the crash report must show per-shard flight-recorder events plus a
  // metrics snapshot — and the process keeps running.
  set_recorder_enabled(true);
  const auto path =
      std::filesystem::temp_directory_path() / "obs_test_sigusr2.txt";
  install_crash_handlers(path.string());
  ASSERT_TRUE(crash_handlers_installed());

  const stream::EventStream es =
      stream::build_event_stream(small_corpus().corpus);
  stream::StreamEngine engine(es, small_corpus().corpus.network);
  engine.run_until(es.total_events() / 2);
  ASSERT_EQ(::raise(SIGUSR2), 0);
  engine.run_all();  // SIGUSR2 is dump-and-continue
  EXPECT_EQ(engine.events_applied(), es.total_events());

  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string report = buf.str();
  EXPECT_NE(report.find("signal=" + std::to_string(SIGUSR2) +
                        " name=SIGUSR2"),
            std::string::npos);
  EXPECT_NE(report.find("kind=vote_applied"), std::string::npos);
  EXPECT_NE(report.find(" dom="), std::string::npos);
  EXPECT_NE(report.find("\"counters\""), std::string::npos);
  EXPECT_NE(report.find("\"stream.votes_ingested\":"), std::string::npos);
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------- exporter

TEST(Prometheus, NamesSanitizeToTheMetricCharset) {
  EXPECT_EQ(prometheus_name("stream.votes_ingested"),
            "stream_votes_ingested");
  EXPECT_EQ(prometheus_name("a-b c"), "a_b_c");
  EXPECT_EQ(prometheus_name("9lives"), "_9lives");
}

TEST(Prometheus, LabelValuesEscapeBackslashQuoteNewline) {
  EXPECT_EQ(prometheus_label_escape("plain"), "plain");
  EXPECT_EQ(prometheus_label_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(prometheus_label_escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(prometheus_label_escape("two\nlines"), "two\\nlines");
}

TEST(Prometheus, RendersCountersGaugesAndCumulativeHistograms) {
  MetricsSnapshot snap;
  snap.counters.emplace_back("stream.votes_ingested", 42);
  snap.gauges.emplace_back("runtime.pool_utilization", 0.5);
  MetricsSnapshot::Hist h;
  h.name = "stream.ingest_story_us";
  h.bounds = {1.0, 2.0};
  h.counts = {3, 2, 1};  // per-bucket; exposition wants cumulative
  h.count = 6;
  h.sum = 9.5;
  snap.histograms.push_back(h);
  const std::string text = render_prometheus(snap);
  EXPECT_NE(text.find("# TYPE digg_stream_votes_ingested_total counter\n"
                      "digg_stream_votes_ingested_total 42\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_runtime_pool_utilization 0.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_stream_ingest_story_us_bucket{le=\"1\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_stream_ingest_story_us_bucket{le=\"2\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_stream_ingest_story_us_bucket{le=\"+Inf\"} 6\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_stream_ingest_story_us_sum 9.5\n"),
            std::string::npos);
  EXPECT_NE(text.find("digg_stream_ingest_story_us_count 6\n"),
            std::string::npos);
}

TEST(Exporter, ServesTheRegistryOverHttp) {
  Registry::global().counter("obs_test.exporter_hits").inc(7);
  const std::uint16_t port = start_exporter(0);
  ASSERT_NE(port, 0) << "exporter failed to bind an ephemeral port";
  EXPECT_TRUE(exporter_running());
  EXPECT_EQ(exporter_port(), port);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const char req[] = "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(::write(fd, req, sizeof(req) - 1),
            static_cast<ssize_t>(sizeof(req) - 1));
  std::string resp;
  char chunk[4096];
  ssize_t n;
  while ((n = ::read(fd, chunk, sizeof(chunk))) > 0)
    resp.append(chunk, static_cast<std::size_t>(n));
  ::close(fd);

  EXPECT_NE(resp.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(resp.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(resp.find("digg_obs_test_exporter_hits_total"),
            std::string::npos);
  stop_exporter();
  EXPECT_FALSE(exporter_running());
}

// ---------------------------------------------------------------- watchdog

TEST(Watchdog, StalledTaskTripsTheCounterABeatenTaskDoesNot) {
  // Route the stall dump into a file (not the test's stderr) by pointing
  // the crash-report path at a temp file.
  const auto crash_path =
      std::filesystem::temp_directory_path() / "obs_test_watchdog.txt";
  install_crash_handlers(crash_path.string());
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  Counter& stalls = Registry::global().counter("obs.watchdog_stalls");
  const std::uint64_t before = stalls.value();
  {
    WatchdogTask stalled("obs_test.stalled", 0);  // already past deadline
    WatchdogTask healthy("obs_test.healthy", 60'000);
    ASSERT_TRUE(start_watchdog(10));
    for (int i = 0; i < 100 && stalls.value() == before; ++i) {
      healthy.beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    stop_watchdog();
  }
  EXPECT_FALSE(watchdog_running());
  EXPECT_GT(stalls.value(), before);
  bool warned_stalled = false, warned_healthy = false;
  for (const std::string& line : capture.lines()) {
    if (line.find("missed its heartbeat") == std::string::npos) continue;
    if (line.find("obs_test.stalled") != std::string::npos)
      warned_stalled = true;
    if (line.find("obs_test.healthy") != std::string::npos)
      warned_healthy = true;
  }
  EXPECT_TRUE(warned_stalled);
  EXPECT_FALSE(warned_healthy);
  // The stall dump reuses the crash-report writer with signal=0.
  std::ifstream in(crash_path.string() + ".stall");
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  EXPECT_NE(buf.str().find("signal=0 name=none"), std::string::npos);
  std::filesystem::remove(crash_path.string() + ".stall");
}

// ------------------------------------------------------- hardware counters

TEST(PerfCounters, ReadsOrDegradesGracefully) {
  PerfCounters counters;
  counters.start();
  // Something measurable, kept opaque to the optimizer.
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink = sink + static_cast<unsigned>(i);
  const PerfReading r = counters.stop();
  if (perf_counters_supported()) {
    ASSERT_TRUE(counters.usable());
    ASSERT_TRUE(r.valid);
    EXPECT_GT(r.cycles, 0u);
    EXPECT_GT(r.instructions, 0u);
    EXPECT_GT(r.ipc(), 0.0);
  } else {
    // No PMU: everything degrades to an invalid zero reading, no crash.
    EXPECT_FALSE(counters.usable());
    EXPECT_FALSE(r.valid);
    EXPECT_DOUBLE_EQ(r.ipc(), 0.0);
    EXPECT_DOUBLE_EQ(r.cache_miss_pct(), 0.0);
  }
}

TEST(PerfCounters, PerfSpanPublishesGaugesOnlyWhenValid) {
  const std::string json_before = Registry::global().to_json();
  const bool had = json_before.find("obs_test.span_ipc") != std::string::npos;
  ASSERT_FALSE(had);
  {
    PerfSpan span("obs_test.span");
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 10000; ++i) sink = sink + static_cast<unsigned>(i);
  }
  const std::string json = Registry::global().to_json();
  EXPECT_EQ(json.find("\"obs_test.span_ipc\"") != std::string::npos,
            perf_counters_supported());
}

// ----------------------------------------------------- env-var error paths

TEST(WarnIfUnwritable, UnwritablePathWarnsWritablePathDoesNot) {
  LogCapture capture;
  set_log_level(LogLevel::kWarn);
  const auto good =
      std::filesystem::temp_directory_path() / "obs_test_writable.json";
  EXPECT_TRUE(warn_if_unwritable("DIGG_METRICS", good.c_str()));
  EXPECT_TRUE(capture.lines().empty());
  EXPECT_FALSE(warn_if_unwritable("DIGG_METRICS",
                                  "/nonexistent-dir/sub/metrics.json"));
  ASSERT_EQ(capture.lines().size(), 1u);
  EXPECT_NE(capture.lines()[0].find("not writable"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("DIGG_METRICS"), std::string::npos);
  EXPECT_NE(capture.lines()[0].find("/nonexistent-dir/sub/metrics.json"),
            std::string::npos);
  std::filesystem::remove(good);
}

TEST(LogFile, UnopenablePathReportsTheStderrFallback) {
  std::string error;
  std::FILE* f = open_log_file("/nonexistent-dir/sub/log.txt", &error);
  EXPECT_EQ(f, nullptr);
  EXPECT_NE(error.find("DIGG_LOG_FILE=/nonexistent-dir/sub/log.txt"),
            std::string::npos);
  EXPECT_NE(error.find("logging to stderr"), std::string::npos);

  const auto good =
      std::filesystem::temp_directory_path() / "obs_test_log.txt";
  std::FILE* ok = open_log_file(good.c_str(), &error);
  ASSERT_NE(ok, nullptr);
  std::fclose(ok);
  std::filesystem::remove(good);
}

TEST(ZeroPerturbation, Fig5IdenticalWithRecorderExporterAndWatchdogOn) {
  // The PR 7 contract: figures stay bit-identical with ALL of telemetry v2
  // enabled — flight recorder, Prometheus exporter, and watchdog.
  auto run = [&] {
    stats::Rng rng(7);
    core::Fig5Params params;
    params.folds = 5;
    return core::fig5_prediction(small_corpus().corpus, params, rng);
  };
  set_recorder_enabled(false);
  const core::Fig5Result off = run();

  set_recorder_enabled(true);
  const std::uint16_t port = start_exporter(0);
  start_watchdog(20);
  const core::Fig5Result on = run();
  stop_watchdog();
  stop_exporter();
  set_recorder_enabled(true);
  EXPECT_NE(port, 0);

  EXPECT_EQ(off.cross_validation.pooled.tp, on.cross_validation.pooled.tp);
  EXPECT_EQ(off.cross_validation.pooled.tn, on.cross_validation.pooled.tn);
  EXPECT_EQ(off.cross_validation.pooled.fp, on.cross_validation.pooled.fp);
  EXPECT_EQ(off.cross_validation.pooled.fn, on.cross_validation.pooled.fn);
  EXPECT_EQ(off.holdout.tp, on.holdout.tp);
  EXPECT_EQ(off.holdout.tn, on.holdout.tn);
  EXPECT_EQ(off.holdout.fp, on.holdout.fp);
  EXPECT_EQ(off.holdout.fn, on.holdout.fn);
  EXPECT_EQ(off.holdout_stories, on.holdout_stories);
  EXPECT_EQ(off.predictor.tree().render(), on.predictor.tree().render());
}

TEST(ZeroPerturbation, LogLevelDoesNotChangeResults) {
  LogCapture capture;
  set_log_level(LogLevel::kTrace);
  stats::Rng rng_loud(3);
  const auto loud =
      data::generate_corpus(data::SyntheticParams{}, rng_loud);
  set_log_level(LogLevel::kOff);
  stats::Rng rng_quiet(3);
  const auto quiet =
      data::generate_corpus(data::SyntheticParams{}, rng_quiet);
  EXPECT_EQ(loud.corpus.story_count(), quiet.corpus.story_count());
  EXPECT_EQ(loud.corpus.front_page.size(), quiet.corpus.front_page.size());
  EXPECT_EQ(loud.corpus.upcoming.size(), quiet.corpus.upcoming.size());
}

}  // namespace
}  // namespace digg::obs
