#include "src/dynamics/vote_model.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

using platform::Platform;
using platform::StoryPhase;
using platform::UserProfile;
using platform::VoteCountPolicy;

struct Fixture {
  graph::Digraph network;
  Platform platform;

  explicit Fixture(std::uint64_t seed = 1, std::size_t users = 2000,
                   std::size_t threshold = 43)
      : network(make_network(seed, users)),
        platform(network, std::vector<UserProfile>(users),
                 std::make_unique<VoteCountPolicy>(threshold)) {}

  static graph::Digraph make_network(std::uint64_t seed, std::size_t users) {
    stats::Rng rng(seed);
    graph::PreferentialAttachmentParams params;
    params.node_count = users;
    params.mean_out_degree = 4.0;
    return graph::preferential_attachment(params, rng);
  }
};

VoteModelParams fast_params() {
  VoteModelParams p;
  p.step = 2.0;
  p.horizon = platform::kMinutesPerDay;  // short runs for tests
  return p;
}

TEST(VoteSimulator, HotStoryGathersManyVotes) {
  Fixture fx;
  // Seed picked for a clearly-hot run under the split(story_id) substreams.
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(10));
  const auto id = fx.platform.submit(0, 0.9, 0.0);
  const StoryRun run = sim.run_story(id, {0.9, 0.7});
  EXPECT_GT(fx.platform.story(id).vote_count(), 50u);
  EXPECT_GT(run.discovery_votes, 10u);
  EXPECT_TRUE(fx.platform.story(id).promoted());
}

TEST(VoteSimulator, DullUnconnectedStoryStaysSmall) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(7));
  // Late-arriving user: few fans.
  const auto id = fx.platform.submit(1999, 0.03, 0.0);
  sim.run_story(id, {0.03, 0.1});
  EXPECT_LT(fx.platform.story(id).vote_count(), 43u);
  EXPECT_FALSE(fx.platform.story(id).promoted());
}

TEST(VoteSimulator, VotesAreChronologicalAndUnique) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(3));
  const auto id = fx.platform.submit(0, 0.6, 0.0);
  sim.run_story(id, {0.6, 0.6});
  const platform::Story& s = fx.platform.story(id);
  ASSERT_GE(s.vote_count(), 2u);
  EXPECT_EQ(s.voters.front(), s.submitter);
  std::set<platform::UserId> seen;
  platform::Minutes prev = -1.0;
  for (std::size_t k = 0; k < s.vote_count(); ++k) {
    EXPECT_TRUE(seen.insert(s.voters[k]).second);
    EXPECT_GE(s.times[k], prev);
    prev = s.times[k];
  }
}

TEST(VoteSimulator, TimeSeriesMatchesFinalCount) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(5));
  const auto id = fx.platform.submit(0, 0.5, 0.0);
  const StoryRun run = sim.run_story(id, {0.5, 0.5});
  EXPECT_DOUBLE_EQ(run.votes_over_time.values().back(),
                   static_cast<double>(fx.platform.story(id).vote_count()));
  EXPECT_DOUBLE_EQ(run.votes_over_time.values().front(), 1.0);
}

TEST(VoteSimulator, ChannelCountsSumToVotes) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(11));
  const auto id = fx.platform.submit(0, 0.7, 0.0);
  const StoryRun run = sim.run_story(id, {0.7, 0.6});
  EXPECT_EQ(1 + run.fan_channel_votes + run.discovery_votes,
            fx.platform.story(id).vote_count());
}

TEST(VoteSimulator, DeterministicGivenSeeds) {
  auto run_once = [] {
    Fixture fx(42);
    VoteSimulator sim(fx.platform, fast_params(), stats::Rng(9));
    const auto id = fx.platform.submit(0, 0.6, 0.0);
    sim.run_story(id, {0.6, 0.5});
    const platform::Story& s = fx.platform.story(id);
    return std::pair(s.voters, s.times);
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(VoteSimulator, UnpromotedStoryStopsAtExpiry) {
  Fixture fx(1, 2000, /*threshold=*/100000);  // promotion unreachable
  VoteModelParams params = fast_params();
  params.horizon = 3.0 * platform::kMinutesPerDay;
  VoteSimulator sim(fx.platform, params, stats::Rng(13));
  const auto id = fx.platform.submit(0, 0.9, 0.0);
  sim.run_story(id, {0.9, 0.9});
  const platform::Story& s = fx.platform.story(id);
  EXPECT_EQ(s.phase, StoryPhase::kExpired);
  // No vote should land after the upcoming lifetime.
  const platform::Minutes lifetime =
      fx.platform.queue_params().upcoming_lifetime;
  for (platform::Minutes t : s.times)
    EXPECT_LE(t, s.submitted_at + lifetime + params.step + 1e-9);
}

TEST(VoteSimulator, FanChannelDominatesForConnectedDullStory) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(17));
  // Top user (0) with a dull-but-community-pleasing story.
  const auto id = fx.platform.submit(0, 0.05, 0.0);
  const StoryRun run = sim.run_story(id, {0.05, 0.9});
  EXPECT_GT(run.fan_channel_votes, run.discovery_votes);
}

TEST(VoteSimulator, DiscoveryDominatesForUnconnectedHotStory) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(19));
  const auto id = fx.platform.submit(1999, 0.9, 0.0);
  const StoryRun run = sim.run_story(id, {0.9, 0.2});
  EXPECT_GT(run.discovery_votes, run.fan_channel_votes);
}

TEST(VoteSimulator, RejectsBadTraitsAndParams) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(1));
  const auto id = fx.platform.submit(0, 0.5, 0.0);
  EXPECT_THROW(sim.run_story(id, {-0.1, 0.5}), std::invalid_argument);
  EXPECT_THROW(sim.run_story(id, {0.5, 1.5}), std::invalid_argument);

  VoteModelParams bad = fast_params();
  bad.step = 0.0;
  EXPECT_THROW(VoteSimulator(fx.platform, bad, stats::Rng(1)),
               std::invalid_argument);
  bad = fast_params();
  bad.horizon = bad.step / 2.0;
  EXPECT_THROW(VoteSimulator(fx.platform, bad, stats::Rng(1)),
               std::invalid_argument);
}

TEST(SimulateBatch, RunsAllSubmissions) {
  Fixture fx;
  VoteSimulator sim(fx.platform, fast_params(), stats::Rng(23));
  const std::vector<std::pair<platform::UserId, StoryTraits>> submissions = {
      {0, {0.5, 0.5}}, {10, {0.2, 0.3}}, {1500, {0.8, 0.4}}};
  const BatchResult result = simulate_batch(fx.platform, sim, submissions, 2.0);
  ASSERT_EQ(result.ids.size(), 3u);
  ASSERT_EQ(result.runs.size(), 3u);
  EXPECT_EQ(fx.platform.story_count(), 3u);
  // Spacing: second story submitted 2 minutes after the first.
  EXPECT_DOUBLE_EQ(fx.platform.story(result.ids[1]).submitted_at, 2.0);
}

}  // namespace
}  // namespace digg::dynamics
