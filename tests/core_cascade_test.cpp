#include "src/core/cascade.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::core {
namespace {

using platform::add_vote;
using platform::make_story;
using platform::Story;

// fans(0) = {1, 2}; fans(1) = {3}; 4, 5 unconnected.
graph::Digraph network() {
  graph::DigraphBuilder b(6);
  b.add_fan(0, 1);
  b.add_fan(0, 2);
  b.add_fan(1, 3);
  return b.build();
}

TEST(VoteProvenance, ClassifiesEachVote) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);  // fan of submitter -> in-network
  add_vote(s, 4, 2.0);  // unconnected -> out
  add_vote(s, 3, 3.0);  // fan of voter 1 -> in-network
  add_vote(s, 5, 4.0);  // unconnected -> out
  const auto prov = vote_provenance(s, network());
  ASSERT_EQ(prov.size(), 4u);
  EXPECT_TRUE(prov[0]);
  EXPECT_FALSE(prov[1]);
  EXPECT_TRUE(prov[2]);
  EXPECT_FALSE(prov[3]);
}

TEST(VoteProvenance, ExposureOrderMatters) {
  // Voter 3 (fan of 1) votes BEFORE 1: at that moment 3 is not exposed.
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 3, 1.0);
  add_vote(s, 1, 2.0);
  const auto prov = vote_provenance(s, network());
  EXPECT_FALSE(prov[0]);
  EXPECT_TRUE(prov[1]);  // 1 is a fan of the submitter
}

TEST(VoteProvenance, EmptyAndSubmitterOnlyStories) {
  EXPECT_TRUE(vote_provenance(Story{}, network()).empty());
  const Story s = make_story(0, 0, 0.0, 0.5);
  EXPECT_TRUE(vote_provenance(s, network()).empty());
}

TEST(VoteProvenance, SubmitterOutsideNetworkTolerated) {
  Story s = make_story(0, 1000, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  const auto prov = vote_provenance(s, network());
  ASSERT_EQ(prov.size(), 1u);
  EXPECT_FALSE(prov[0]);  // submitter has no (known) fans
}

TEST(InNetworkVotes, CountsWithinFirstN) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);  // in
  add_vote(s, 4, 2.0);  // out
  add_vote(s, 2, 3.0);  // in (fan of submitter)
  add_vote(s, 3, 4.0);  // in (fan of 1)
  EXPECT_EQ(in_network_votes(s, network(), 1), 1u);
  EXPECT_EQ(in_network_votes(s, network(), 2), 1u);
  EXPECT_EQ(in_network_votes(s, network(), 3), 2u);
  EXPECT_EQ(in_network_votes(s, network(), 10), 3u);
  EXPECT_EQ(in_network_votes(s, network(), 0), 0u);
}

TEST(CascadeProfile, MatchesIndividualCounts) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  add_vote(s, 4, 2.0);
  add_vote(s, 2, 3.0);
  add_vote(s, 3, 4.0);
  add_vote(s, 5, 5.0);
  const auto profile = cascade_profile(s, network(), {1, 3, 5, 100});
  ASSERT_EQ(profile.size(), 4u);
  EXPECT_EQ(profile[0], in_network_votes(s, network(), 1));
  EXPECT_EQ(profile[1], in_network_votes(s, network(), 3));
  EXPECT_EQ(profile[2], in_network_votes(s, network(), 5));
  EXPECT_EQ(profile[3], in_network_votes(s, network(), 100));
}

TEST(CascadeProfile, RejectsUnsortedCheckpoints) {
  const Story s = make_story(0, 0, 0.0, 0.5);
  EXPECT_THROW(cascade_profile(s, network(), {10, 5}), std::invalid_argument);
}

TEST(CascadeProfile, MonotoneNonDecreasing) {
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);
  add_vote(s, 2, 2.0);
  add_vote(s, 3, 3.0);
  const auto profile = cascade_profile(s, network(), {1, 2, 3});
  EXPECT_LE(profile[0], profile[1]);
  EXPECT_LE(profile[1], profile[2]);
}

}  // namespace
}  // namespace digg::core
