#include "src/ml/c45.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/stats/rng.h"

namespace digg::ml {
namespace {

Dataset numeric_dataset(std::vector<std::pair<double, std::size_t>> points) {
  Dataset d({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  for (const auto& [x, label] : points) d.add({x}, label);
  return d;
}

TEST(Entropy, KnownValues) {
  EXPECT_DOUBLE_EQ(entropy({}), 0.0);
  EXPECT_DOUBLE_EQ(entropy({4.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(entropy({5.0, 5.0}), 1.0);
  EXPECT_NEAR(entropy({1.0, 1.0, 1.0, 1.0}), 2.0, 1e-12);
}

TEST(DecisionTree, LearnsSimpleThreshold) {
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 20; ++i) points.emplace_back(i, i < 10 ? 0 : 1);
  const DecisionTree tree = DecisionTree::train(numeric_dataset(points));
  EXPECT_EQ(tree.predict({3.0}), 0u);
  EXPECT_EQ(tree.predict({15.0}), 1u);
  EXPECT_EQ(tree.depth(), 1u);
  EXPECT_EQ(tree.leaf_count(), 2u);
}

TEST(DecisionTree, ThresholdAtClassBoundaryMidpoint) {
  const DecisionTree tree = DecisionTree::train(
      numeric_dataset({{1, 0}, {2, 0}, {3, 0}, {7, 1}, {8, 1}, {9, 1}}));
  // Boundary between 3 and 7: split at 5.
  EXPECT_EQ(tree.predict({4.9}), 0u);
  EXPECT_EQ(tree.predict({5.1}), 1u);
}

TEST(DecisionTree, PureDatasetIsSingleLeaf) {
  const DecisionTree tree =
      DecisionTree::train(numeric_dataset({{1, 1}, {2, 1}, {3, 1}}));
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.predict({100.0}), 1u);
}

TEST(DecisionTree, TwoAttributeInteraction) {
  // Class = yes iff x > 5 AND y > 5 (needs a depth-2 tree).
  Dataset d({{"x", AttributeKind::kNumeric, {}},
             {"y", AttributeKind::kNumeric, {}}},
            {"no", "yes"});
  stats::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.uniform(0.0, 10.0);
    const double y = rng.uniform(0.0, 10.0);
    d.add({x, y}, (x > 5.0 && y > 5.0) ? 1 : 0);
  }
  const DecisionTree tree = DecisionTree::train(d);
  EXPECT_EQ(tree.predict({8.0, 8.0}), 1u);
  EXPECT_EQ(tree.predict({8.0, 2.0}), 0u);
  EXPECT_EQ(tree.predict({2.0, 8.0}), 0u);
  EXPECT_EQ(tree.predict({2.0, 2.0}), 0u);
  const auto used = tree.used_attributes();
  EXPECT_EQ(used.size(), 2u);
}

TEST(DecisionTree, NominalMultiwaySplit) {
  Dataset d({{"color", AttributeKind::kNominal, {"red", "green", "blue"}}},
            {"no", "yes"});
  for (int i = 0; i < 5; ++i) {
    d.add({0.0}, 1);  // red -> yes
    d.add({1.0}, 0);  // green -> no
    d.add({2.0}, 1);  // blue -> yes
  }
  const DecisionTree tree = DecisionTree::train(d);
  EXPECT_EQ(tree.predict({0.0}), 1u);
  EXPECT_EQ(tree.predict({1.0}), 0u);
  EXPECT_EQ(tree.predict({2.0}), 1u);
}

TEST(DecisionTree, MissingValueRoutedToMajorityBranch) {
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 30; ++i) points.emplace_back(i, i < 20 ? 0 : 1);
  const DecisionTree tree = DecisionTree::train(numeric_dataset(points));
  // Majority of training mass sits below the threshold -> class 0.
  EXPECT_EQ(tree.predict({kMissing}), 0u);
}

TEST(DecisionTree, PruningCollapsesNoise) {
  // Labels independent of x: an unpruned tree would overfit; the pruned
  // tree should be (nearly) a single leaf.
  stats::Rng rng(11);
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 100; ++i)
    points.emplace_back(rng.uniform(0.0, 1.0), rng.bernoulli(0.5) ? 1 : 0);
  C45Params pruned;
  pruned.prune = true;
  C45Params unpruned;
  unpruned.prune = false;
  const Dataset d = numeric_dataset(points);
  const DecisionTree a = DecisionTree::train(d, pruned);
  const DecisionTree b = DecisionTree::train(d, unpruned);
  EXPECT_LE(a.node_count(), b.node_count());
  EXPECT_LE(a.leaf_count(), 5u);
}

TEST(DecisionTree, MinInstancesStopsSplitting) {
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 20; ++i) points.emplace_back(i, i < 10 ? 0 : 1);
  C45Params params;
  params.min_instances = 15;  // cannot produce two branches of 15
  params.prune = false;
  const DecisionTree tree =
      DecisionTree::train(numeric_dataset(points), params);
  EXPECT_EQ(tree.node_count(), 1u);
}

TEST(DecisionTree, PredictProbaIsDistribution) {
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 20; ++i) points.emplace_back(i, i < 12 ? 0 : 1);
  const DecisionTree tree = DecisionTree::train(numeric_dataset(points));
  const auto proba = tree.predict_proba({3.0});
  ASSERT_EQ(proba.size(), 2u);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-12);
  EXPECT_GT(proba[0], proba[1]);
}

TEST(DecisionTree, RenderShowsAttributeAndClassNames) {
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 20; ++i) points.emplace_back(i, i < 10 ? 0 : 1);
  const DecisionTree tree = DecisionTree::train(numeric_dataset(points));
  const std::string out = tree.render();
  EXPECT_NE(out.find("x <="), std::string::npos);
  EXPECT_NE(out.find("no"), std::string::npos);
  EXPECT_NE(out.find("yes"), std::string::npos);
}

TEST(DecisionTree, RenderCountsMatchPaperStyle) {
  // A leaf with training errors renders as "(N/E)".
  std::vector<std::pair<double, std::size_t>> points;
  for (int i = 0; i < 50; ++i) points.emplace_back(i, i < 25 ? 0 : 1);
  points.emplace_back(3.0, 1);  // one mislabeled point below threshold
  C45Params params;
  params.prune = true;
  const DecisionTree tree =
      DecisionTree::train(numeric_dataset(points), params);
  EXPECT_NE(tree.render().find("/"), std::string::npos);
}

TEST(DecisionTree, RejectsBadTrainingInput) {
  Dataset empty({{"x", AttributeKind::kNumeric, {}}}, {"no", "yes"});
  EXPECT_THROW(DecisionTree::train(empty), std::invalid_argument);
  Dataset d = numeric_dataset({{1, 0}, {2, 1}});
  C45Params params;
  params.min_instances = 0;
  EXPECT_THROW(DecisionTree::train(d, params), std::invalid_argument);
  params.min_instances = 2;
  params.confidence_factor = 0.0;
  EXPECT_THROW(DecisionTree::train(d, params), std::invalid_argument);
}

TEST(DecisionTree, PredictValidatesRow) {
  const DecisionTree tree = DecisionTree::train(
      numeric_dataset({{1, 0}, {2, 0}, {8, 1}, {9, 1}}));
  EXPECT_THROW(tree.predict({}), std::invalid_argument);
}

TEST(DecisionTree, GainRatioPrefersInformativeOverFragmenting) {
  // Attribute "id" splits every instance into its own nominal value (high
  // gain, terrible gain ratio); attribute x is a clean threshold. C4.5's
  // gain ratio must pick x.
  Dataset d({{"x", AttributeKind::kNumeric, {}},
             {"id", AttributeKind::kNominal,
              {"a", "b", "c", "d", "e", "f", "g", "h"}}},
            {"no", "yes"});
  for (int i = 0; i < 8; ++i)
    d.add({static_cast<double>(i), static_cast<double>(i)},
          i < 4 ? 0u : 1u);
  C45Params params;
  params.prune = false;
  const DecisionTree tree = DecisionTree::train(d, params);
  const auto used = tree.used_attributes();
  ASSERT_FALSE(used.empty());
  EXPECT_EQ(used[0], 0u);
  EXPECT_EQ(used.size(), 1u);
}

}  // namespace
}  // namespace digg::ml
