#include "src/ml/dataset.h"

#include <gtest/gtest.h>

#include <cmath>

namespace digg::ml {
namespace {

Dataset two_attr_dataset() {
  return Dataset({{"x", AttributeKind::kNumeric, {}},
                  {"color", AttributeKind::kNominal, {"red", "blue"}}},
                 {"no", "yes"});
}

TEST(Dataset, ConstructionValidatesSchema) {
  EXPECT_THROW(Dataset({}, {"a", "b"}), std::invalid_argument);
  EXPECT_THROW(Dataset({{"x", AttributeKind::kNumeric, {}}}, {"only"}),
               std::invalid_argument);
  EXPECT_THROW(
      Dataset({{"c", AttributeKind::kNominal, {"one"}}}, {"a", "b"}),
      std::invalid_argument);
}

TEST(Dataset, AddAndAccess) {
  Dataset d = two_attr_dataset();
  d.add({1.5, 0.0}, 1);
  d.add({2.5, 1.0}, 0);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_DOUBLE_EQ(d.value(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(d.value(1, 1), 1.0);
  EXPECT_EQ(d.label(0), 1u);
  EXPECT_EQ(d.attribute(1).name, "color");
  EXPECT_EQ(d.class_count(), 2u);
}

TEST(Dataset, AddValidatesRows) {
  Dataset d = two_attr_dataset();
  EXPECT_THROW(d.add({1.0}, 0), std::invalid_argument);       // width
  EXPECT_THROW(d.add({1.0, 0.0}, 5), std::out_of_range);      // label
  EXPECT_THROW(d.add({1.0, 2.0}, 0), std::invalid_argument);  // nominal range
  EXPECT_THROW(d.add({1.0, 0.5}, 0), std::invalid_argument);  // non-integer
}

TEST(Dataset, MissingValuesAllowedAnywhere) {
  Dataset d = two_attr_dataset();
  d.add({kMissing, kMissing}, 0);
  EXPECT_TRUE(is_missing(d.value(0, 0)));
  EXPECT_TRUE(is_missing(d.value(0, 1)));
}

TEST(Dataset, ClassHistogramAndMajority) {
  Dataset d = two_attr_dataset();
  d.add({1.0, 0.0}, 1);
  d.add({2.0, 0.0}, 1);
  d.add({3.0, 1.0}, 0);
  const auto hist = d.class_histogram();
  EXPECT_EQ(hist[0], 1u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(d.majority_class(), 1u);
}

TEST(Dataset, MajorityTieBreaksToSmallestIndex) {
  Dataset d = two_attr_dataset();
  d.add({1.0, 0.0}, 0);
  d.add({2.0, 0.0}, 1);
  EXPECT_EQ(d.majority_class(), 0u);
}

TEST(Dataset, SubsetSharesSchemaAndSelectsRows) {
  Dataset d = two_attr_dataset();
  d.add({1.0, 0.0}, 0);
  d.add({2.0, 1.0}, 1);
  d.add({3.0, 0.0}, 0);
  const Dataset sub = d.subset({2, 0});
  ASSERT_EQ(sub.size(), 2u);
  EXPECT_DOUBLE_EQ(sub.value(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(sub.value(1, 0), 1.0);
  EXPECT_EQ(sub.attribute_count(), 2u);
}

TEST(Dataset, OutOfRangeAccessThrows) {
  Dataset d = two_attr_dataset();
  d.add({1.0, 0.0}, 0);
  EXPECT_THROW(d.row(1), std::out_of_range);
  EXPECT_THROW(d.label(1), std::out_of_range);
  EXPECT_THROW(d.attribute(2), std::out_of_range);
}

TEST(IsMissing, DetectsOnlyNan) {
  EXPECT_TRUE(is_missing(kMissing));
  EXPECT_TRUE(is_missing(std::nan("")));
  EXPECT_FALSE(is_missing(0.0));
  EXPECT_FALSE(is_missing(1e300));
}

}  // namespace
}  // namespace digg::ml
