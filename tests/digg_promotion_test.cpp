#include "src/digg/promotion.h"

#include <gtest/gtest.h>

#include "src/digg/story.h"

namespace digg::platform {
namespace {

Story story_with_votes(std::size_t votes, Minutes spacing = 1.0) {
  Story s = make_story(0, 0, 0.0, 0.5);
  for (UserId u = 1; u < votes; ++u)
    add_vote(s, u, static_cast<Minutes>(u) * spacing);
  return s;
}

graph::Digraph empty_network(std::size_t n = 64) {
  return graph::DigraphBuilder(n).build();
}

TEST(VoteCountPolicy, PromotesAtThreshold) {
  const VoteCountPolicy policy(43);
  const graph::Digraph net = empty_network();
  EXPECT_FALSE(policy.should_promote(story_with_votes(42), net, 50.0));
  EXPECT_TRUE(policy.should_promote(story_with_votes(43), net, 50.0));
}

TEST(VoteCountPolicy, WindowExpires) {
  const VoteCountPolicy policy(10, /*window=*/100.0);
  const graph::Digraph net = empty_network();
  const Story s = story_with_votes(20);
  EXPECT_TRUE(policy.should_promote(s, net, 99.0));
  EXPECT_FALSE(policy.should_promote(s, net, 101.0));
}

TEST(VoteCountPolicy, ExposesThreshold) {
  EXPECT_EQ(VoteCountPolicy(43).threshold(), 43u);
  EXPECT_EQ(VoteCountPolicy().name(), "vote-count");
}

TEST(VoteRatePolicy, RequiresBothCountAndRate) {
  // 50 votes spaced 60 min apart: last 10 span 540 min.
  const VoteRatePolicy policy(43, 10, /*rate_window=*/240.0);
  const graph::Digraph net = empty_network();
  const Story slow = story_with_votes(50, 60.0);
  EXPECT_FALSE(policy.should_promote(slow, net, slow.times.back()));
  const Story fast = story_with_votes(50, 1.0);
  EXPECT_TRUE(policy.should_promote(fast, net, fast.times.back()));
}

TEST(VoteRatePolicy, BelowThresholdNeverPromotes) {
  const VoteRatePolicy policy(43, 10, 240.0);
  const Story s = story_with_votes(42, 0.1);
  EXPECT_FALSE(policy.should_promote(s, empty_network(), 10.0));
}

TEST(VoteRatePolicy, RateMeasuredOverLastVotes) {
  // Slow start, fast finish: last 10 votes packed into 5 minutes.
  Story s = make_story(0, 0, 0.0, 0.5);
  Minutes t = 0.0;
  for (UserId u = 1; u < 40; ++u) add_vote(s, u, t += 30.0);
  for (UserId u = 40; u < 50; ++u) add_vote(s, u, t += 0.5);
  const VoteRatePolicy policy(43, 10, 240.0, /*window=*/1e9);
  EXPECT_TRUE(policy.should_promote(s, empty_network(), t));
}

TEST(DiversityPolicy, IndependentVotesCountFully) {
  const DiversityPolicy policy(5.0, 0.4);
  const graph::Digraph net = empty_network();
  // No fan links: every vote independent, mass == vote count.
  const Story s = story_with_votes(7);
  EXPECT_DOUBLE_EQ(policy.weighted_votes(s, net), 7.0);
  EXPECT_TRUE(policy.should_promote(s, net, 1.0));
}

TEST(DiversityPolicy, FanVotesDiscounted) {
  // Voters 1..4 are all fans of the submitter (0).
  graph::DigraphBuilder b(8);
  for (UserId fan = 1; fan <= 4; ++fan) b.add_fan(0, fan);
  const graph::Digraph net = b.build();
  Story s = make_story(0, 0, 0.0, 0.5);
  for (UserId u = 1; u <= 4; ++u) add_vote(s, u, static_cast<Minutes>(u));
  const DiversityPolicy policy(100.0, 0.4);
  // submitter 1.0 + 4 fan votes * 0.4
  EXPECT_DOUBLE_EQ(policy.weighted_votes(s, net), 1.0 + 4 * 0.4);
}

TEST(DiversityPolicy, FanOfPriorVoterAlsoDiscounted) {
  // 2 is a fan of 1 (not of the submitter); 1 votes first.
  graph::DigraphBuilder b(8);
  b.add_fan(1, 2);
  const graph::Digraph net = b.build();
  Story s = make_story(0, 0, 0.0, 0.5);
  add_vote(s, 1, 1.0);  // independent
  add_vote(s, 2, 2.0);  // fan of voter 1
  const DiversityPolicy policy(100.0, 0.5);
  EXPECT_DOUBLE_EQ(policy.weighted_votes(s, net), 1.0 + 1.0 + 0.5);
}

TEST(DiversityPolicy, PromotesWhenWeightedMassReached) {
  const DiversityPolicy policy(3.0, 0.4);
  const graph::Digraph net = empty_network();
  EXPECT_FALSE(policy.should_promote(story_with_votes(2), net, 5.0));
  EXPECT_TRUE(policy.should_promote(story_with_votes(3), net, 5.0));
}

TEST(DiversityPolicy, RespectsWindow) {
  const DiversityPolicy policy(2.0, 0.4, /*window=*/10.0);
  EXPECT_FALSE(
      policy.should_promote(story_with_votes(5), empty_network(), 100.0));
}

TEST(Factories, ProduceExpectedPolicies) {
  EXPECT_EQ(make_june2006_policy()->name(), "vote-count");
  EXPECT_EQ(make_september2006_policy()->name(), "diversity");
}

// The September-2006 change's purpose: a fan-driven story needs more raw
// votes than an independent one to reach the same weighted mass.
TEST(DiversityPolicy, FanDrivenStoryNeedsMoreVotes) {
  graph::DigraphBuilder b(64);
  for (UserId fan = 1; fan < 64; ++fan) b.add_fan(0, fan);
  const graph::Digraph net = b.build();

  Story fan_driven = make_story(0, 0, 0.0, 0.5);
  for (UserId u = 1; u <= 20; ++u) add_vote(fan_driven, u, 1.0 * u);

  const DiversityPolicy policy(10.0, 0.25);
  const double fan_mass = policy.weighted_votes(fan_driven, net);
  const double independent_mass =
      policy.weighted_votes(story_with_votes(21), empty_network());
  EXPECT_LT(fan_mass, independent_mass);
  EXPECT_DOUBLE_EQ(fan_mass, 1.0 + 20 * 0.25);
}

}  // namespace
}  // namespace digg::platform
