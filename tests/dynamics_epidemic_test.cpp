#include "src/dynamics/epidemic.h"

#include <gtest/gtest.h>

#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

graph::Digraph ring(std::size_t n) {
  graph::DigraphBuilder b(n);
  for (graph::NodeId u = 0; u < n; ++u)
    b.add_follow(u, static_cast<graph::NodeId>((u + 1) % n));
  return b.build();
}

TEST(Sis, NoInfectionRateDiesOut) {
  stats::Rng rng(1);
  EpidemicParams params;
  params.infection_rate = 0.0;
  params.recovery_rate = 0.5;
  params.max_steps = 200;
  const EpidemicResult r = sis_epidemic(ring(100), params, rng);
  EXPECT_EQ(r.infected_over_time.back(), 0u);
  EXPECT_LT(r.final_metric, 0.05);
}

TEST(Sis, NoRecoverySaturatesComponent) {
  stats::Rng rng(2);
  EpidemicParams params;
  params.infection_rate = 0.8;
  params.recovery_rate = 0.0;
  params.max_steps = 300;
  const EpidemicResult r = sis_epidemic(ring(100), params, rng);
  EXPECT_EQ(r.infected_over_time.back(), 100u);
  EXPECT_GT(r.final_metric, 0.9);
}

TEST(Sis, InitialSeedCountRespected) {
  stats::Rng rng(3);
  EpidemicParams params;
  params.initial_infected = 7;
  const EpidemicResult r = sis_epidemic(ring(50), params, rng);
  EXPECT_EQ(r.infected_over_time.front(), 7u);
}

TEST(Sir, FullInfectionAttackRateIsOne) {
  stats::Rng rng(4);
  EpidemicParams params;
  params.infection_rate = 1.0;
  params.recovery_rate = 1.0;
  params.max_steps = 300;
  const EpidemicResult r = sir_epidemic(ring(100), params, rng);
  EXPECT_DOUBLE_EQ(r.final_metric, 1.0);
  EXPECT_EQ(r.infected_over_time.back(), 0u);  // everyone recovered
}

TEST(Sir, AttackRateBetweenZeroAndOne) {
  stats::Rng rng(5);
  EpidemicParams params;
  params.infection_rate = 0.2;
  params.recovery_rate = 0.5;
  const EpidemicResult r = sir_epidemic(ring(200), params, rng);
  EXPECT_GE(r.final_metric, 0.0);
  EXPECT_LE(r.final_metric, 1.0);
}

TEST(Epidemic, RejectsBadParameters) {
  stats::Rng rng(1);
  EpidemicParams params;
  params.infection_rate = 1.5;
  EXPECT_THROW(sis_epidemic(ring(10), params, rng), std::invalid_argument);
  EXPECT_THROW(sis_epidemic(graph::DigraphBuilder(0).build(), {}, rng),
               std::invalid_argument);
}

TEST(SisThreshold, RingFormula) {
  // Undirected projection of the directed ring: every node has degree 2
  // (one friend + one fan), so <k>/<k^2> = 2/4 = 0.5.
  EXPECT_DOUBLE_EQ(sis_threshold_estimate(ring(50)), 0.5);
}

TEST(SisThreshold, ScaleFreeBelowHomogeneous) {
  // Heavy-tailed degree distributions push <k^2> up and the threshold down
  // (Pastor-Satorras & Vespignani) — the §6 observation.
  stats::Rng rng(6);
  graph::PreferentialAttachmentParams pa;
  pa.node_count = 2000;
  pa.mean_out_degree = 3.0;
  const graph::Digraph sf = graph::preferential_attachment(pa, rng);
  const graph::Digraph er = graph::erdos_renyi(2000, 3.0 / 1999.0, rng);
  EXPECT_LT(sis_threshold_estimate(sf), sis_threshold_estimate(er));
}

TEST(SisThreshold, EmptyGraphThrows) {
  EXPECT_THROW(sis_threshold_estimate(graph::DigraphBuilder(0).build()),
               std::invalid_argument);
}

TEST(PrevalenceSweep, MonotoneAcrossThreshold) {
  stats::Rng rng(7);
  const graph::Digraph g = graph::erdos_renyi(400, 8.0 / 399.0, rng);
  const auto sweep =
      prevalence_sweep(g, {0.02, 0.6}, /*recovery=*/0.5, /*trials=*/3,
                       /*max_steps=*/150, rng);
  ASSERT_EQ(sweep.size(), 2u);
  EXPECT_DOUBLE_EQ(sweep[0].first, 0.02);
  EXPECT_LT(sweep[0].second, sweep[1].second);
  EXPECT_GT(sweep[1].second, 0.1);  // well above threshold: endemic
}

TEST(PrevalenceSweep, RejectsZeroTrials) {
  stats::Rng rng(1);
  EXPECT_THROW(prevalence_sweep(ring(10), {0.1}, 0.5, 0, 10, rng),
               std::invalid_argument);
}

}  // namespace
}  // namespace digg::dynamics
