// The online Bayes fit: the pure Gamma-Poisson arithmetic (bayes.h), the
// engine's accumulation/fit hook, and checkpoint v2 (kill/resume carries
// the exposure state bit-for-bit; config mismatches are refused).

#include "src/stream/bayes.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "src/core/features.h"
#include "src/data/synthetic.h"
#include "src/stream/checkpoint.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace digg::stream {
namespace {

namespace fs = std::filesystem;

// --- pure-arithmetic unit tests -----------------------------------------

TEST(BayesFit, PosteriorMeansMatchConjugateFormulas) {
  BayesFitParams p;
  BayesEvidence e;
  e.in_network_votes = 4;
  e.out_network_votes = 6;
  e.exposure_watcher_minutes = 8000.0;
  e.elapsed_minutes = 600.0;
  const BayesFit fit = fit_rates(p, e);
  EXPECT_DOUBLE_EQ(fit.r_fan, (p.fan_prior_votes + 4.0) /
                                  (p.fan_prior_exposure + 8000.0));
  EXPECT_DOUBLE_EQ(fit.r_disc, (p.disc_prior_votes + 6.0) /
                                   (p.disc_prior_minutes + 600.0));
}

TEST(BayesFit, NoEvidenceFallsBackToPrior) {
  const BayesFitParams p;
  const BayesFit fit = fit_rates(p, BayesEvidence{});
  EXPECT_DOUBLE_EQ(fit.r_fan, p.fan_prior_votes / p.fan_prior_exposure);
  EXPECT_DOUBLE_EQ(fit.r_disc, p.disc_prior_votes / p.disc_prior_minutes);
}

TEST(BayesFit, AudiencePerVoteIsCapped) {
  BayesFitParams p;
  BayesEvidence e;
  e.votes = 2;
  e.audience = 1e6;  // a mega-hub's fan union
  const BayesFit fit = fit_rates(p, e);
  EXPECT_EQ(fit.audience_per_vote, p.max_audience_per_vote);
}

TEST(BayesForward, PredictionNeverBelowObservedVotes) {
  const BayesFitParams p;
  BayesEvidence e;
  e.votes = 11;
  e.elapsed_minutes = 300.0;
  const double n = expected_final_votes(p, e, fit_rates(p, e));
  EXPECT_GE(n, 11.0);
}

TEST(BayesForward, HotterRatesPredictMoreVotes) {
  const BayesFitParams p;
  BayesEvidence e;
  e.votes = 11;
  e.elapsed_minutes = 120.0;
  e.audience = 400.0;
  BayesFit cold = fit_rates(p, e);
  BayesFit hot = cold;
  hot.r_fan *= 50.0;
  hot.r_disc *= 50.0;
  EXPECT_GT(expected_final_votes(p, e, hot),
            expected_final_votes(p, e, cold));
}

TEST(BayesForward, PromotionThresholdZeroNeverPromotes) {
  BayesFitParams p;
  BayesEvidence e;
  e.votes = 11;
  e.elapsed_minutes = 120.0;
  e.audience = 200.0;
  BayesFit fit = fit_rates(p, e);
  fit.r_disc = 0.4;  // enough discovery flow to cross 43 in the queue
  const double promoted = expected_final_votes(p, e, fit);
  p.promotion_threshold = 0;
  const double never = expected_final_votes(p, e, fit);
  // The front-page gain only fires in the promoting run.
  EXPECT_GT(promoted, never);
}

// --- engine integration --------------------------------------------------

const data::SyntheticCorpus& corpus() {
  static const data::SyntheticCorpus c = [] {
    stats::Rng rng(42);
    data::SyntheticParams params;
    params.user_count = 20000;
    params.story_count = 250;
    params.vote_model.step = 2.0;
    return data::generate_corpus(params, rng);
  }();
  return c;
}

const EventStream& stream() {
  static const EventStream s = build_event_stream(corpus().corpus);
  return s;
}

StreamParams bayes_params() {
  StreamParams p;
  p.bayes.enabled = true;
  return p;
}

TEST(StreamBayes, FitsFireOnceStoriesPassTheFitPoint) {
  StreamEngine engine(stream(), corpus().corpus.network, bayes_params());
  engine.run_all();
  const StreamResult result = engine.result();
  std::size_t fits = 0;
  for (const StoryOutcome& o : result.stories) {
    // The verdict exists exactly for stories that reached fit_at + 1 votes.
    EXPECT_EQ(o.bayes_interesting.has_value(), o.final_votes >= 11u);
    if (!o.bayes_interesting) continue;
    ++fits;
    EXPECT_GE(o.bayes_expected_final, 11.0);
    EXPECT_EQ(*o.bayes_interesting,
              o.bayes_expected_final >
                  static_cast<double>(core::kInterestingnessThreshold));
  }
  ASSERT_GT(fits, 0u);
}

TEST(StreamBayes, DisabledEngineEmitsNoVerdicts) {
  StreamEngine engine(stream(), corpus().corpus.network);
  engine.run_all();
  for (const StoryOutcome& o : engine.result().stories) {
    EXPECT_FALSE(o.bayes_interesting.has_value());
    EXPECT_EQ(o.bayes_expected_final, 0.0);
  }
}

TEST(StreamBayes, EstimatesTrackFinalVotesDirectionally) {
  // Not a calibration test — just that the fitted model orders a clearly
  // hot story above a clearly cold one, on average. Compare the mean
  // prediction of the top and bottom quartile of fitted stories by final
  // votes.
  StreamEngine engine(stream(), corpus().corpus.network, bayes_params());
  engine.run_all();
  std::vector<std::pair<std::size_t, double>> fitted;  // (final, predicted)
  for (const StoryOutcome& o : engine.result().stories)
    if (o.bayes_interesting)
      fitted.emplace_back(o.final_votes, o.bayes_expected_final);
  ASSERT_GE(fitted.size(), 20u);
  std::sort(fitted.begin(), fitted.end());
  const std::size_t q = fitted.size() / 4;
  double lo = 0, hi = 0;
  for (std::size_t i = 0; i < q; ++i) {
    lo += fitted[i].second;
    hi += fitted[fitted.size() - 1 - i].second;
  }
  EXPECT_GT(hi, lo);
}

TEST(StreamBayes, FitAtMustFitTheCascadeWindow) {
  StreamParams p = bayes_params();
  p.bayes.fit_at = 0;
  EXPECT_THROW(StreamEngine(stream(), corpus().corpus.network, p),
               std::invalid_argument);
  p.bayes.fit_at = 21;  // last cascade checkpoint is 20
  EXPECT_THROW(StreamEngine(stream(), corpus().corpus.network, p),
               std::invalid_argument);
}

// --- checkpoint v2 -------------------------------------------------------

class StreamBayesCkpt : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("digg_stream_bayes_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }
  [[nodiscard]] fs::path file(const std::string& name) const {
    return dir_ / name;
  }

 private:
  fs::path dir_;
};

TEST_F(StreamBayesCkpt, KillResumeIsBitIdenticalAcrossTheFitPoint) {
  // Cut mid-stream so plenty of stories are still accumulating exposure
  // below fit_at: the resumed engine must carry that state, fit later, and
  // land on exactly the uninterrupted result.
  const auto& net = corpus().corpus.network;
  StreamEngine reference(stream(), net, bayes_params());
  reference.run_all();
  const StreamResult expect = reference.result();

  for (const double frac : {0.1, 0.5, 0.9}) {
    StreamEngine first(stream(), net, bayes_params());
    first.run_until(static_cast<std::uint64_t>(
        static_cast<double>(stream().total_events()) * frac));
    const fs::path ckpt = file("cut.ckpt");
    first.save_checkpoint(ckpt);

    StreamEngine resumed(stream(), net, bayes_params());
    resumed.restore_checkpoint(ckpt);
    resumed.run_all();
    const StreamResult got = resumed.result();
    ASSERT_EQ(got.stories.size(), expect.stories.size());
    for (std::size_t i = 0; i < got.stories.size(); ++i) {
      EXPECT_EQ(got.stories[i].bayes_interesting,
                expect.stories[i].bayes_interesting);
      EXPECT_EQ(got.stories[i].bayes_expected_final,
                expect.stories[i].bayes_expected_final);
      EXPECT_EQ(got.stories[i].final_votes, expect.stories[i].final_votes);
    }
  }
}

TEST_F(StreamBayesCkpt, ConfigMismatchIsRefusedBothWays) {
  const auto& net = corpus().corpus.network;
  const fs::path with = file("with.ckpt");
  const fs::path without = file("without.ckpt");
  {
    StreamEngine e(stream(), net, bayes_params());
    e.run_until(stream().total_events() / 2);
    e.save_checkpoint(with);
  }
  {
    StreamEngine e(stream(), net);
    e.run_until(stream().total_events() / 2);
    e.save_checkpoint(without);
  }
  {
    StreamEngine plain(stream(), net);
    EXPECT_THROW(plain.restore_checkpoint(with), std::runtime_error);
  }
  {
    StreamEngine bayes(stream(), net, bayes_params());
    EXPECT_THROW(bayes.restore_checkpoint(without), std::runtime_error);
  }
  {
    StreamParams other = bayes_params();
    other.bayes.fit_at = 6;
    StreamEngine different(stream(), net, other);
    EXPECT_THROW(different.restore_checkpoint(with), std::runtime_error);
  }
}

TEST_F(StreamBayesCkpt, CheckpointReportsVersionTwo) {
  const fs::path ckpt = file("v2.ckpt");
  StreamEngine e(stream(), corpus().corpus.network, bayes_params());
  e.run_until(1000);
  e.save_checkpoint(ckpt);
  const CheckpointInfo info = read_checkpoint_info(ckpt);
  EXPECT_EQ(info.version, kStreamCheckpointVersion);
  EXPECT_EQ(info.events_applied, 1000u);
}

}  // namespace
}  // namespace digg::stream
