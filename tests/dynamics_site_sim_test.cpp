#include "src/dynamics/site_sim.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generators.h"

namespace digg::dynamics {
namespace {

using platform::Platform;
using platform::UserProfile;

graph::Digraph make_network(std::size_t users, std::uint64_t seed) {
  stats::Rng rng(seed);
  graph::PreferentialAttachmentParams params;
  params.node_count = users;
  params.mean_out_degree = 4.0;
  return graph::preferential_attachment(params, rng);
}

std::vector<UserProfile> make_population(std::size_t users) {
  stats::Rng rng(5);
  platform::PopulationParams params;
  params.user_count = users;
  return platform::generate_population(params, rng);
}

TraitsSampler mixed_traits() {
  return [](UserId submitter, stats::Rng& rng) {
    StoryTraits traits;
    traits.general = rng.uniform(0.05, 0.8);
    traits.community =
        std::min(1.0, 0.2 + 0.5 * traits.general +
                          (submitter < 100 ? 0.4 : 0.0));
    return traits;
  };
}

SiteParams fast_site() {
  SiteParams p;
  p.submissions_per_day = 200.0;
  p.duration = 1.5 * platform::kMinutesPerDay;
  p.step = 2.0;
  return p;
}

TEST(SiteSimulator, RunsAndAccumulatesStories) {
  const graph::Digraph net = make_network(4000, 1);
  Platform plat(net, make_population(4000),
                std::make_unique<platform::VoteRatePolicy>(20, 5, 360.0));
  SiteSimulator sim(plat, fast_site(), mixed_traits(), stats::Rng(2));
  const SiteResult r = sim.run();
  EXPECT_GT(r.submissions, 150u);
  EXPECT_EQ(r.submissions, plat.story_count());
  EXPECT_EQ(r.traits.size(), r.submissions);
  EXPECT_GT(r.total_votes, r.submissions);  // at least some voting happened
}

TEST(SiteSimulator, SomeStoriesPromoteAndGatherMoreVotes) {
  const graph::Digraph net = make_network(4000, 3);
  Platform plat(net, make_population(4000),
                std::make_unique<platform::VoteRatePolicy>(15, 5, 360.0));
  SiteSimulator sim(plat, fast_site(), mixed_traits(), stats::Rng(4));
  const SiteResult r = sim.run();
  ASSERT_GT(r.promotions, 3u);
  double promoted_mean = 0.0;
  double upcoming_mean = 0.0;
  std::size_t upcoming_n = 0;
  for (platform::StoryId id = 0; id < plat.story_count(); ++id) {
    const platform::Story& s = plat.story(id);
    if (s.promoted()) {
      promoted_mean += static_cast<double>(s.vote_count());
    } else {
      upcoming_mean += static_cast<double>(s.vote_count());
      ++upcoming_n;
    }
  }
  promoted_mean /= static_cast<double>(r.promotions);
  upcoming_mean /= static_cast<double>(std::max<std::size_t>(1, upcoming_n));
  EXPECT_GT(promoted_mean, 2.0 * upcoming_mean);
}

TEST(SiteSimulator, VoteRecordsStayValid) {
  const graph::Digraph net = make_network(3000, 7);
  Platform plat(net, make_population(3000),
                std::make_unique<platform::VoteRatePolicy>(15, 5, 360.0));
  SiteSimulator sim(plat, fast_site(), mixed_traits(), stats::Rng(8));
  sim.run();
  for (platform::StoryId id = 0; id < plat.story_count(); ++id) {
    const platform::Story& s = plat.story(id);
    ASSERT_FALSE(s.voters.empty());
    EXPECT_EQ(s.voters.front(), s.submitter);
    std::set<UserId> seen;
    platform::Minutes prev = -1.0;
    for (std::size_t k = 0; k < s.vote_count(); ++k) {
      EXPECT_TRUE(seen.insert(s.voters[k]).second);
      EXPECT_GE(s.times[k], prev);
      prev = s.times[k];
    }
  }
}

TEST(SiteSimulator, DeterministicGivenSeeds) {
  auto run_once = [] {
    const graph::Digraph net = make_network(2000, 11);
    Platform plat(net, make_population(2000),
                  std::make_unique<platform::VoteRatePolicy>(15, 5, 360.0));
    SiteParams params = fast_site();
    params.duration = 0.5 * platform::kMinutesPerDay;
    SiteSimulator sim(plat, params, mixed_traits(), stats::Rng(12));
    sim.run();
    std::size_t votes = 0;
    for (platform::StoryId id = 0; id < plat.story_count(); ++id)
      votes += plat.story(id).vote_count();
    return std::pair(plat.story_count(), votes);
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(SiteSimulator, RejectsBadConstruction) {
  const graph::Digraph net = make_network(500, 13);
  Platform plat(net, std::vector<UserProfile>(500),
                platform::make_june2006_policy());
  SiteParams bad = fast_site();
  bad.step = 0.0;
  EXPECT_THROW(SiteSimulator(plat, bad, mixed_traits(), stats::Rng(1)),
               std::invalid_argument);
  EXPECT_THROW(SiteSimulator(plat, fast_site(), nullptr, stats::Rng(1)),
               std::invalid_argument);
}

TEST(SiteSimulator, AttentionCompetitionCapsTotalFrontPageVotes) {
  // Doubling the number of competing promoted stories must NOT double the
  // total front-page vote volume: the attention budget is shared. Compare
  // total votes under low and high submission rates.
  auto total_votes_at = [](double submissions_per_day) {
    const graph::Digraph net = make_network(4000, 17);
    Platform plat(net, make_population(4000),
                  std::make_unique<platform::VoteRatePolicy>(12, 5, 360.0));
    SiteParams params;
    params.submissions_per_day = submissions_per_day;
    params.duration = platform::kMinutesPerDay;
    params.step = 2.0;
    SiteSimulator sim(plat, params, mixed_traits(), stats::Rng(18));
    return sim.run().total_votes;
  };
  const std::size_t low = total_votes_at(100.0);
  const std::size_t high = total_votes_at(400.0);
  EXPECT_GT(high, low);              // more stories -> more total votes...
  EXPECT_LT(high, 4 * low);          // ...but sublinear (shared attention)
}

}  // namespace
}  // namespace digg::dynamics
