// Differential property tests for the SIMD kernel layer (src/simd): every
// vectorized table must compute bit-identical results to the scalar
// reference on randomized inputs that cover the kernels' regime switches —
// dense block-compare vs skewed bounded-sweep set difference, ragged
// sub-vector tails, unaligned bases, word-boundary bitmap ids — plus the
// two consumers whose outputs the repo's figures depend on: HybridSet's
// union/staging/tombstone/promotion state machine and FlatTree's batched
// C4.5 descent (NaN rows included). The final test pins the end-to-end
// contract: a full StreamEngine replay is bit-identical between the scalar
// and native kernel tables at 1 and 4 threads.

#include "src/simd/dispatch.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "src/data/synthetic.h"
#include "src/digg/hybrid_set.h"
#include "src/ml/c45.h"
#include "src/ml/flat_tree.h"
#include "src/runtime/thread_pool.h"
#include "src/stats/rng.h"
#include "src/stream/engine.h"
#include "src/stream/source.h"

namespace digg::simd {
namespace {

/// Pins the dispatch table for a scope; restores best-supported on exit so
/// test order can't leak a forced level.
class LevelGuard {
 public:
  explicit LevelGuard(Level level) { force_level(level); }
  ~LevelGuard() { force_level(best_supported()); }
};

/// Every level with a real table on this host, scalar first. On hosts
/// without SSE/AVX2 the list degenerates to {kScalar} and the differential
/// tests reduce to scalar-vs-scalar (trivially green, by design: the suite
/// must pass on any target).
std::vector<Level> levels_under_test() {
  std::vector<Level> levels = {Level::kScalar};
  if (best_supported() >= Level::kSse) levels.push_back(Level::kSse);
  if (best_supported() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

std::vector<std::uint32_t> sorted_unique(stats::Rng& rng, std::size_t len,
                                         std::uint32_t lo, std::uint32_t hi) {
  std::set<std::uint32_t> s;
  while (s.size() < len && s.size() <= static_cast<std::size_t>(hi - lo))
    s.insert(static_cast<std::uint32_t>(
        rng.uniform_int(static_cast<std::int64_t>(lo),
                        static_cast<std::int64_t>(hi))));
  return {s.begin(), s.end()};
}

// ----------------------------------------------------------- set_diff ----

TEST(SimdSetDiff, MatchesScalarAcrossShapesAndLevels) {
  stats::Rng rng(20080521);
  for (int trial = 0; trial < 300; ++trial) {
    // Cycle through the regimes: dense (block compare), skewed (bounded
    // sweep -> gallop), tiny spans, empty main, span past main's end.
    const int shape = trial % 5;
    std::size_t main_n = 0;
    std::size_t span_n = 0;
    switch (shape) {
      case 0:  // dense: comparable sizes
        main_n = static_cast<std::size_t>(rng.uniform_int(16, 400));
        span_n = static_cast<std::size_t>(rng.uniform_int(16, 400));
        break;
      case 1:  // skewed: main dwarfs span
        main_n = static_cast<std::size_t>(rng.uniform_int(512, 3000));
        span_n = static_cast<std::size_t>(rng.uniform_int(1, 40));
        break;
      case 2:  // tiny span, tiny main (ragged tails everywhere)
        main_n = static_cast<std::size_t>(rng.uniform_int(0, 12));
        span_n = static_cast<std::size_t>(rng.uniform_int(0, 12));
        break;
      case 3:  // extreme skew: exercises the sweep's gallop escape
        main_n = static_cast<std::size_t>(rng.uniform_int(2000, 3500));
        span_n = static_cast<std::size_t>(rng.uniform_int(1, 3));
        break;
      default:  // moderate, odd (unaligned) sizes
        main_n = static_cast<std::size_t>(rng.uniform_int(31, 777));
        span_n = static_cast<std::size_t>(rng.uniform_int(17, 333));
        break;
    }
    const std::uint32_t universe =
        static_cast<std::uint32_t>(rng.uniform_int(4000, 40000));
    std::vector<std::uint32_t> main_v =
        sorted_unique(rng, main_n, 0, universe);
    // Half the spans draw from a shifted range so keys land before/after
    // all of main, not just interleaved.
    const std::uint32_t span_lo = trial % 2 ? universe / 2 : 0;
    std::vector<std::uint32_t> span_v = sorted_unique(
        rng, span_n, span_lo, universe + universe / 2);
    // Seed genuine overlap (random draws over a big universe rarely
    // collide): copy some of main into the span.
    for (std::size_t i = 0; i < main_v.size() && i < span_v.size(); i += 3)
      span_v[i] = main_v[i];
    std::sort(span_v.begin(), span_v.end());
    span_v.erase(std::unique(span_v.begin(), span_v.end()), span_v.end());

    // Unaligned bases: both arrays offset one element from the vector's
    // (aligned) allocation.
    std::vector<std::uint32_t> main_buf(main_v.size() + 1, 0);
    std::copy(main_v.begin(), main_v.end(), main_buf.begin() + 1);
    std::vector<std::uint32_t> span_buf(span_v.size() + 1, 0);
    std::copy(span_v.begin(), span_v.end(), span_buf.begin() + 1);
    const std::uint32_t* main_p = main_buf.data() + 1;
    const std::uint32_t* span_p = span_buf.data() + 1;

    std::vector<std::uint32_t> ref_out(span_v.size() + kPackSlack);
    std::vector<std::uint32_t> ref_pos(span_v.size() + kPackSlack);
    const std::size_t ref_n = detail::scalar_set_diff_u32(
        span_p, span_v.size(), main_p, main_v.size(), ref_out.data(),
        ref_pos.data());

    // The scalar reference itself must agree with std::set_difference and
    // std::lower_bound — anchor the whole differential chain to the STL.
    std::vector<std::uint32_t> stl_out;
    std::set_difference(span_v.begin(), span_v.end(), main_v.begin(),
                        main_v.end(), std::back_inserter(stl_out));
    ASSERT_EQ(ref_n, stl_out.size()) << "trial " << trial;
    for (std::size_t i = 0; i < ref_n; ++i) {
      ASSERT_EQ(ref_out[i], stl_out[i]) << "trial " << trial;
      const auto lb =
          std::lower_bound(main_v.begin(), main_v.end(), ref_out[i]);
      ASSERT_EQ(ref_pos[i],
                static_cast<std::uint32_t>(lb - main_v.begin()))
          << "trial " << trial << " candidate " << i;
    }

    for (const Level level : levels_under_test()) {
      const KernelTable& kt = kernels_for(level);
      std::vector<std::uint32_t> out(span_v.size() + kPackSlack, 0xDEADu);
      std::vector<std::uint32_t> pos(span_v.size() + kPackSlack, 0xDEADu);
      const std::size_t n = kt.set_diff_u32(span_p, span_v.size(), main_p,
                                            main_v.size(), out.data(),
                                            pos.data());
      ASSERT_EQ(n, ref_n) << "trial " << trial << " level "
                          << level_name(level);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(out[i], ref_out[i])
            << "trial " << trial << " level " << level_name(level);
        ASSERT_EQ(pos[i], ref_pos[i])
            << "trial " << trial << " level " << level_name(level);
      }
    }
  }
}

// ------------------------------------------------------ bitmap kernels ---

TEST(SimdBitmap, MissingAndSetMatchScalarAcrossLevels) {
  stats::Rng rng(773);
  for (int trial = 0; trial < 200; ++trial) {
    const std::uint32_t universe =
        static_cast<std::uint32_t>(rng.uniform_int(64, 8192));
    const std::size_t n_words = (universe + 63) / 64;
    std::vector<std::uint64_t> words(n_words);
    for (std::uint64_t& w : words)
      w = static_cast<std::uint64_t>(rng.uniform_int(
              0, std::numeric_limits<std::int64_t>::max())) ^
          (static_cast<std::uint64_t>(
               rng.uniform_int(0, std::numeric_limits<std::int64_t>::max()))
           << 1);
    const std::size_t len =
        static_cast<std::size_t>(rng.uniform_int(0, 300));
    std::vector<std::uint32_t> ids =
        sorted_unique(rng, len, 0, universe - 1);
    // Force word-boundary ids into some trials: bit 0, a 63/64 straddle,
    // and the last representable id.
    if (trial % 4 == 0 && universe > 130) {
      ids.insert(ids.end(), {0u, 63u, 64u, universe - 1});
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    }

    std::vector<std::uint32_t> ref_missing(ids.size() + kPackSlack);
    const std::size_t ref_n = detail::scalar_bitmap_missing_u32(
        words.data(), ids.data(), ids.size(), ref_missing.data());
    std::vector<std::uint64_t> ref_words = words;
    const std::size_t ref_newly = detail::scalar_bitmap_set_u32(
        ref_words.data(), ids.data(), ids.size());

    for (const Level level : levels_under_test()) {
      const KernelTable& kt = kernels_for(level);
      std::vector<std::uint32_t> missing(ids.size() + kPackSlack, 0xDEADu);
      const std::size_t n = kt.bitmap_missing_u32(
          words.data(), ids.data(), ids.size(), missing.data());
      ASSERT_EQ(n, ref_n) << "trial " << trial << " level "
                          << level_name(level);
      for (std::size_t i = 0; i < n; ++i)
        ASSERT_EQ(missing[i], ref_missing[i])
            << "trial " << trial << " level " << level_name(level);

      std::vector<std::uint64_t> w2 = words;
      const std::size_t newly =
          kt.bitmap_set_u32(w2.data(), ids.data(), ids.size());
      ASSERT_EQ(newly, ref_newly)
          << "trial " << trial << " level " << level_name(level);
      ASSERT_EQ(w2, ref_words)
          << "trial " << trial << " level " << level_name(level);
    }
  }
}

// ------------------------------------------------- C4.5 batched descent --

TEST(SimdC45, FlatTreeMatchesPointerWalkIncludingNaN) {
  stats::Rng rng(4242);
  for (int trial = 0; trial < 20; ++trial) {
    // Train a real tree on noisy random data so depths and shapes vary.
    const std::size_t n_attrs =
        static_cast<std::size_t>(rng.uniform_int(2, 5));
    std::vector<ml::Attribute> attrs;
    for (std::size_t a = 0; a < n_attrs; ++a)
      attrs.push_back({"a" + std::to_string(a),
                       ml::AttributeKind::kNumeric,
                       {}});
    ml::Dataset data(attrs, {"no", "yes"});
    for (int i = 0; i < 200; ++i) {
      std::vector<double> row(n_attrs);
      double score = 0.0;
      for (double& v : row) {
        v = rng.uniform(0.0, 10.0);
        score += v;
      }
      const bool label =
          score > 5.0 * static_cast<double>(n_attrs) ||
          rng.uniform(0.0, 1.0) < 0.1;
      data.add(row, label ? 1 : 0);
    }
    const ml::DecisionTree tree = ml::DecisionTree::train(data);
    const ml::FlatTree flat(tree);
    ASSERT_TRUE(flat.valid()) << "numeric tree must compile";

    // Batch sizes off the 4-row vector width, rows with NaN in every
    // attribute position.
    const std::size_t n_rows =
        static_cast<std::size_t>(rng.uniform_int(1, 101));
    std::vector<double> rows(n_rows * n_attrs);
    for (std::size_t r = 0; r < n_rows; ++r)
      for (std::size_t a = 0; a < n_attrs; ++a)
        rows[r * n_attrs + a] =
            rng.uniform(0.0, 1.0) < 0.15
                ? std::numeric_limits<double>::quiet_NaN()
                : rng.uniform(-5.0, 15.0);

    std::vector<std::int32_t> want(n_rows);
    for (std::size_t r = 0; r < n_rows; ++r) {
      const std::vector<double> row(rows.begin() + r * n_attrs,
                                    rows.begin() + (r + 1) * n_attrs);
      want[r] = static_cast<std::int32_t>(tree.predict(row));
    }

    for (const Level level : levels_under_test()) {
      LevelGuard guard(level);
      std::vector<std::int32_t> got(n_rows, -1);
      flat.predict_classes(rows.data(), n_rows, n_attrs, got.data());
      ASSERT_EQ(got, want) << "trial " << trial << " level "
                           << level_name(level);
    }
  }
}

// -------------------------------------------- HybridSet state machine ----

// Replays one randomized op script (bulk unions with an accept filter,
// staged inserts, tombstoning erases, promotion crossings) at a pinned
// kernel level; returns every observable: on_new sequences, sizes, and
// content snapshots.
struct SetTrace {
  std::vector<std::uint32_t> on_new;
  std::vector<std::size_t> sizes;
  std::vector<std::vector<std::uint32_t>> snapshots;
};

SetTrace run_set_script(Level level, std::uint64_t seed) {
  LevelGuard guard(level);
  stats::Rng rng(seed);
  constexpr std::size_t kUniverse = 4096;  // threshold 128: promotes fast
  platform::HybridSet set(kUniverse);
  SetTrace trace;
  for (int op = 0; op < 400; ++op) {
    const int kind = static_cast<int>(rng.uniform_int(0, 9));
    if (kind < 5) {
      const std::size_t len =
          static_cast<std::size_t>(rng.uniform_int(0, 200));
      const std::vector<std::uint32_t> span = [&] {
        std::set<std::uint32_t> s;
        while (s.size() < len)
          s.insert(static_cast<std::uint32_t>(
              rng.uniform_int(0, kUniverse - 1)));
        return std::vector<std::uint32_t>(s.begin(), s.end());
      }();
      set.union_span(
          span, [](std::uint32_t id) { return id % 7 != 0; },
          [&](std::uint32_t id) { trace.on_new.push_back(id); });
    } else if (kind < 7) {
      set.insert(
          static_cast<std::uint32_t>(rng.uniform_int(0, kUniverse - 1)));
    } else if (kind < 9) {
      set.erase(
          static_cast<std::uint32_t>(rng.uniform_int(0, kUniverse - 1)));
    } else {
      trace.snapshots.push_back(set.to_vector());
      set.reset(kUniverse);
    }
    trace.sizes.push_back(set.size());
  }
  trace.snapshots.push_back(set.to_vector());
  return trace;
}

TEST(SimdHybridSet, ScriptIsBitIdenticalAcrossLevels) {
  for (std::uint64_t seed : {1ull, 99ull, 20080521ull}) {
    const SetTrace want = run_set_script(Level::kScalar, seed);
    EXPECT_FALSE(want.on_new.empty());
    EXPECT_TRUE(std::any_of(
        want.sizes.begin(), want.sizes.end(),
        [](std::size_t s) {
          return s >= platform::HybridSet::promote_threshold(4096);
        }))
        << "script must cross promotion to cover the bitmap kernels";
    for (const Level level : levels_under_test()) {
      const SetTrace got = run_set_script(level, seed);
      ASSERT_EQ(got.on_new, want.on_new)
          << "seed " << seed << " level " << level_name(level);
      ASSERT_EQ(got.sizes, want.sizes)
          << "seed " << seed << " level " << level_name(level);
      ASSERT_EQ(got.snapshots, want.snapshots)
          << "seed " << seed << " level " << level_name(level);
    }
  }
}

// ------------------------------------------ end-to-end figure identity ---

class ThreadGuard {
 public:
  explicit ThreadGuard(unsigned threads) {
    runtime::set_default_threads(threads);
  }
  ~ThreadGuard() { runtime::set_default_threads(0); }
};

void expect_same_outcome(const stream::StoryOutcome& a,
                         const stream::StoryOutcome& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.submitter, b.submitter);
  EXPECT_EQ(a.cascade, b.cascade);
  EXPECT_EQ(a.influence, b.influence);
  EXPECT_EQ(a.fans1, b.fans1);
  EXPECT_EQ(a.final_votes, b.final_votes);
  EXPECT_EQ(a.interesting, b.interesting);
  EXPECT_EQ(a.predicted_interesting, b.predicted_interesting);
  EXPECT_EQ(a.bayes_interesting, b.bayes_interesting);
  EXPECT_EQ(a.bayes_expected_final, b.bayes_expected_final);
  EXPECT_EQ(a.promoted_time, b.promoted_time);
}

TEST(SimdFigureIdentity, ReplayBitIdenticalScalarVsNativeAcrossThreads) {
  stats::Rng rng(42);
  data::SyntheticParams params;
  params.user_count = 20000;
  params.story_count = 200;
  const data::SyntheticCorpus sc = data::generate_corpus(params, rng);
  const stream::EventStream es = stream::build_event_stream(sc.corpus);
  // A trained predictor routes every story through the batched C4.5 v10
  // hook, so the tree kernels are part of the identity check too.
  const std::vector<core::StoryFeatures> feats =
      core::extract_features(sc.corpus.front_page, sc.corpus.network);
  const core::InterestingnessPredictor predictor =
      core::InterestingnessPredictor::train(feats);
  stream::StreamParams sp;
  sp.predictor = &predictor;

  auto replay = [&](Level level, unsigned threads) {
    LevelGuard kernel_guard(level);
    ThreadGuard thread_guard(threads);
    stream::StreamEngine engine(es, sc.corpus.network, sp);
    engine.run_all();
    return engine.result();
  };

  const stream::StreamResult want = replay(Level::kScalar, 1);
  for (const Level level : {Level::kScalar, best_supported()}) {
    for (const unsigned threads : {1u, 4u}) {
      SCOPED_TRACE(std::string("level ") + level_name(level) + " threads " +
                   std::to_string(threads));
      const stream::StreamResult got = replay(level, threads);
      EXPECT_EQ(got.events_applied, want.events_applied);
      ASSERT_EQ(got.stories.size(), want.stories.size());
      for (std::size_t i = 0; i < got.stories.size(); ++i) {
        SCOPED_TRACE("story slot " + std::to_string(i));
        expect_same_outcome(got.stories[i], want.stories[i]);
      }
    }
  }
}

}  // namespace
}  // namespace digg::simd
