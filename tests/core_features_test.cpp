#include "src/core/features.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/digg/story.h"

namespace digg::core {
namespace {

using platform::add_vote;
using platform::make_story;

// fans(0) = {1..10}; everyone else unconnected.
graph::Digraph star_network() {
  graph::DigraphBuilder b(64);
  for (platform::UserId fan = 1; fan <= 10; ++fan) b.add_fan(0, fan);
  return b.build();
}

platform::Story story_with_alternating_votes(std::size_t extra_votes) {
  // Votes alternate: fan of submitter, unconnected, fan, unconnected...
  platform::Story s = make_story(0, 0, 0.0, 0.5);
  platform::UserId fan = 1;
  platform::UserId outsider = 20;
  for (std::size_t k = 0; k < extra_votes; ++k) {
    const platform::Minutes t = static_cast<double>(k + 1);
    if (k % 2 == 0 && fan <= 10) {
      add_vote(s, fan++, t);
    } else {
      add_vote(s, outsider++, t);
    }
  }
  return s;
}

TEST(ExtractFeatures, CountsEarlyInNetworkVotes) {
  const platform::Story s = story_with_alternating_votes(20);
  const StoryFeatures f = extract_features(s, star_network());
  EXPECT_EQ(f.v6, 3u);
  EXPECT_EQ(f.v10, 5u);
  EXPECT_EQ(f.v20, 10u);
  EXPECT_EQ(f.fans1, 10u);
  EXPECT_EQ(f.final_votes, 21u);
  EXPECT_FALSE(f.interesting);
  EXPECT_EQ(f.story, s.id);
  EXPECT_EQ(f.submitter, 0u);
}

TEST(ExtractFeatures, InterestingnessThreshold) {
  platform::Story s = make_story(0, 0, 0.0, 0.5);
  // Rebuild the vote columns wholesale; only the count matters here.
  s.voters.clear();
  s.times.clear();
  for (std::size_t i = 0; i < 521; ++i) {
    s.voters.push_back(static_cast<platform::UserId>(i));
    s.times.push_back(static_cast<double>(i));
  }
  s.submitter = 0;
  const StoryFeatures f = extract_features(s, star_network());
  EXPECT_EQ(f.final_votes, 521u);
  EXPECT_TRUE(f.interesting);  // 521 > 520

  s.voters.pop_back();
  s.times.pop_back();
  const StoryFeatures g = extract_features(s, star_network());
  EXPECT_FALSE(g.interesting);  // exactly 520 is NOT interesting
}

TEST(ExtractFeatures, CustomThreshold) {
  const platform::Story s = story_with_alternating_votes(30);
  const StoryFeatures f = extract_features(s, star_network(), 30);
  EXPECT_TRUE(f.interesting);  // 31 votes > 30
}

TEST(ExtractFeatures, SubmitterOutsideNetworkHasZeroFans) {
  platform::Story s = make_story(0, 1000, 0.0, 0.5);
  const StoryFeatures f = extract_features(s, star_network());
  EXPECT_EQ(f.fans1, 0u);
}

TEST(ExtractFeatures, BatchMatchesSingle) {
  // Owning stories outlive the views handed to the batch API.
  const platform::Story s10 = story_with_alternating_votes(10);
  const platform::Story s4 = story_with_alternating_votes(4);
  const std::vector<data::Story> stories = {s10, s4};
  const auto batch = extract_features(stories, star_network());
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].v10, extract_features(stories[0], star_network()).v10);
  EXPECT_EQ(batch[1].v6, extract_features(stories[1], star_network()).v6);
}

data::Corpus corpus_for_testset() {
  data::Corpus c;
  c.network = star_network();
  c.top_users = {0, 5};  // user 0 and 5 are "top"

  // Story A: top submitter, 12 quick votes, never promoted. Qualifies.
  platform::Story a = make_story(0, 0, 0.0, 0.5);
  for (platform::UserId u = 20; u < 32; ++u)
    add_vote(a, u, static_cast<double>(u - 19));
  c.add_story(a, data::Corpus::Section::kUpcoming);

  // Story B: top submitter, promoted before the scrape delay. Excluded.
  platform::Story b = make_story(1, 0, 0.0, 0.5);
  for (platform::UserId u = 32; u < 50; ++u)
    add_vote(b, u, static_cast<double>(u - 31));
  b.promoted_at = 30.0;
  b.phase = platform::StoryPhase::kFrontPage;
  c.add_story(b, data::Corpus::Section::kFrontPage);

  // Story C: top submitter, promoted well after the scrape. Qualifies.
  platform::Story d = make_story(2, 5, 0.0, 0.5);
  for (platform::UserId u = 50; u < 62; ++u)
    add_vote(d, u, static_cast<double>(u - 49));
  d.promoted_at = 10.0 * 60.0;  // 10 hours
  d.phase = platform::StoryPhase::kFrontPage;
  c.add_story(d, data::Corpus::Section::kFrontPage);

  // Story D: non-top submitter. Excluded.
  platform::Story e = make_story(3, 7, 0.0, 0.5);
  for (platform::UserId u = 40; u < 55; ++u)
    add_vote(e, u, static_cast<double>(u - 39));
  c.add_story(e, data::Corpus::Section::kUpcoming);

  // Story E: top submitter but too few votes by scrape time. Excluded.
  platform::Story f = make_story(4, 5, 0.0, 0.5);
  add_vote(f, 35, 1.0);
  c.add_story(f, data::Corpus::Section::kUpcoming);
  return c;
}

TEST(TopUserTestset, AppliesScrapeSemantics) {
  const data::Corpus c = corpus_for_testset();
  const auto testset =
      top_user_testset(c, /*rank_cutoff=*/2, /*min_votes=*/10,
                       /*scrape_delay=*/6.0 * 60.0);
  std::vector<platform::StoryId> ids;
  for (const auto& s : testset) ids.push_back(s.id);
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<platform::StoryId>{0, 2}));
}

TEST(TopUserTestset, RankCutoffRestrictsSubmitters) {
  const data::Corpus c = corpus_for_testset();
  const auto testset = top_user_testset(c, /*rank_cutoff=*/1, 10, 6.0 * 60.0);
  for (const auto& s : testset) EXPECT_EQ(s.submitter, 0u);
}

TEST(TopUserTestset, EmptyCorpusGivesEmptySet) {
  data::Corpus c;
  c.network = star_network();
  EXPECT_TRUE(top_user_testset(c).empty());
}

}  // namespace
}  // namespace digg::core
